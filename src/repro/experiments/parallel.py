"""Figure 3 — performance degradation with parallel accelerators.

The paper builds a 12-accelerator SoC with three instances each of FFT,
Night-vision, Sort, and SPMV, gives every accelerator a medium (256 KB)
workload, and runs 1, 4, 8, and 12 accelerators concurrently under each of
the four coherence modes.  Every accelerator is invoked several times in a
row from its own thread; per-invocation performance is normalised to the
single-accelerator non-coherent-DMA case and averaged over the four
accelerator types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.accelerators.library import accelerator_by_name
from repro.core.policies import FixedPolicy
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentSetup, build_runtime, motivation_setup
from repro.experiments.sweep import Job, SweepRunner, SweepSpec, run_spec
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.units import KB
from repro.utils.stats import mean
from repro.workloads.runner import run_application
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

#: The accelerator mix of the Figure 3 SoC: three instances of each type.
PARALLEL_ACCELERATOR_TYPES = ("FFT", "Night-vision", "Sort", "SPMV")

#: Concurrency levels evaluated by the paper.
PARALLEL_COUNTS = (1, 4, 8, 12)

#: Medium workload size used for every accelerator.
PARALLEL_FOOTPRINT_BYTES = 256 * KB


@dataclass(frozen=True)
class ParallelMeasurement:
    """Average per-invocation performance at one (mode, concurrency) point."""

    mode: CoherenceMode
    active_accelerators: int
    exec_cycles: float
    ddr_accesses: float


def parallel_setup(line_bytes: Optional[int] = None) -> ExperimentSetup:
    """The Figure 3 SoC: 12 accelerators, three instances of each type."""
    accelerators = [
        accelerator_by_name(name)
        for name in PARALLEL_ACCELERATOR_TYPES
        for _ in range(3)
    ]
    setup = motivation_setup(accelerators=accelerators, line_bytes=line_bytes)
    return ExperimentSetup(
        name="Parallel", soc_config=setup.soc_config, accelerators=accelerators
    )


def _select_instances(count: int) -> List[str]:
    """Choose which accelerator instances are active at a concurrency level.

    Instances are spread across the four types round-robin, so 4 active
    accelerators means one of each type and 12 means all three of each.
    """
    if count <= 0 or count > 12:
        raise ExperimentError("active accelerator count must be in [1, 12]")
    names: List[str] = []
    for instance in range(3):
        for type_name in PARALLEL_ACCELERATOR_TYPES:
            names.append(type_name)
    return names[:count]


def _parallel_app(count: int, footprint: int, invocations_per_thread: int) -> ApplicationSpec:
    threads = tuple(
        ThreadSpec(
            thread_id=f"par-{index}",
            accelerator_chain=(name,),
            footprint_bytes=footprint,
            loop_count=invocations_per_thread,
            cpu_index=index % 2,
        )
        for index, name in enumerate(_select_instances(count))
    )
    phase = PhaseSpec(name=f"parallel-{count}", threads=threads)
    return ApplicationSpec(name=f"parallel-{count}", phases=(phase,))


def _parallel_job(params: Dict[str, object], rng) -> Dict[str, object]:
    """Sweep job: one (mode, concurrency) point of the Figure 3 grid."""
    setup: ExperimentSetup = params["setup"]  # type: ignore[assignment]
    mode: CoherenceMode = params["mode"]  # type: ignore[assignment]
    count = int(params["count"])  # type: ignore[arg-type]
    soc, runtime = build_runtime(setup, FixedPolicy(mode))
    app = _parallel_app(
        count,
        int(params["footprint_bytes"]),  # type: ignore[arg-type]
        int(params["invocations_per_thread"]),  # type: ignore[arg-type]
    )
    result = run_application(soc, runtime, app)

    # Average per-invocation performance per accelerator type, then across
    # types — the paper's aggregation.
    per_type_exec: Dict[str, List[float]] = {}
    per_type_ddr: Dict[str, List[float]] = {}
    for invocation in result.invocations:
        per_type_exec.setdefault(invocation.accelerator_name, []).append(
            invocation.total_cycles
        )
        per_type_ddr.setdefault(invocation.accelerator_name, []).append(
            invocation.ddr_accesses
        )
    return {
        "exec_cycles": mean([mean(v) for v in per_type_exec.values()]),
        "ddr_accesses": mean([mean(v) for v in per_type_ddr.values()]),
    }


def run_parallel_experiment(
    setup: Optional[ExperimentSetup] = None,
    counts: Sequence[int] = PARALLEL_COUNTS,
    modes: Sequence[CoherenceMode] = COHERENCE_MODES,
    footprint_bytes: int = PARALLEL_FOOTPRINT_BYTES,
    invocations_per_thread: int = 4,
    runner: Optional[SweepRunner] = None,
) -> List[ParallelMeasurement]:
    """Run the Figure 3 sweep and return raw per-point measurements."""
    setup = setup if setup is not None else parallel_setup()
    grid = [
        (index, mode, count)
        for index, (mode, count) in enumerate(
            (mode, count) for mode in modes for count in counts
        )
    ]
    jobs = [
        Job(
            # The index keeps keys unique if an axis value is repeated.
            key=f"{index}-{mode.label}/{count}",
            fn=_parallel_job,
            params={
                "setup": setup,
                "mode": mode,
                "count": count,
                "footprint_bytes": footprint_bytes,
                "invocations_per_thread": invocations_per_thread,
            },
            seed=setup.seed,
        )
        for index, mode, count in grid
    ]
    spec = SweepSpec(name=f"parallel-{setup.name}", jobs=jobs)
    outcome = run_spec(spec, runner)
    return [
        ParallelMeasurement(
            mode=mode,
            active_accelerators=count,
            exec_cycles=float(payload["exec_cycles"]),
            ddr_accesses=float(payload["ddr_accesses"]),
        )
        for (index, mode, count), payload in zip(grid, outcome.payloads.values())
    ]


def normalize_parallel(
    measurements: Sequence[ParallelMeasurement],
    reference_mode: CoherenceMode = CoherenceMode.NON_COH_DMA,
) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Normalise to the single-accelerator run of ``reference_mode``.

    Returns ``{count: {mode_label: {"exec": x, "mem": y}}}`` matching the
    bars of Figure 3.
    """
    reference = next(
        (
            m
            for m in measurements
            if m.mode is reference_mode and m.active_accelerators == 1
        ),
        None,
    )
    if reference is None:
        raise ExperimentError("missing single-accelerator reference measurement")
    ref_exec = max(reference.exec_cycles, 1e-9)
    ref_mem = max(reference.ddr_accesses, 1e-9)

    table: Dict[int, Dict[str, Dict[str, float]]] = {}
    for measurement in measurements:
        row = table.setdefault(measurement.active_accelerators, {})
        row[measurement.mode.label] = {
            "exec": measurement.exec_cycles / ref_exec,
            "mem": measurement.ddr_accesses / ref_mem,
        }
    return table


def degradation_summary(
    measurements: Sequence[ParallelMeasurement],
) -> Mapping[str, float]:
    """Slowdown of each mode from 1 to the maximum concurrency level."""
    by_mode: Dict[CoherenceMode, Dict[int, float]] = {}
    for measurement in measurements:
        by_mode.setdefault(measurement.mode, {})[measurement.active_accelerators] = (
            measurement.exec_cycles
        )
    summary: Dict[str, float] = {}
    for mode, series in by_mode.items():
        low = series.get(min(series))
        high = series.get(max(series))
        if low and high:
            summary[mode.label] = high / low
    return summary
