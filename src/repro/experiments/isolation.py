"""Figure 2 — accelerators running in isolation.

Each accelerator runs alone on the motivation SoC (32 KB private caches,
two 512 KB LLC partitions, two DRAM controllers) with three workload sizes
— roughly 16 KB (Small), 256 KB (Medium), and 4 MB (Large) — under each of
the four coherence modes.  Results are normalised to the non-coherent-DMA
mode per (accelerator, size), exactly like the bars of Figure 2.

The same machinery doubles as the profiling pass behind the paper's
*fixed heterogeneous* baseline: sweep an accelerator's footprint across
modes while it runs alone, then pick the mode with the best aggregate
execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.core.policies import FixedHeterogeneousPolicy, FixedPolicy
from repro.core.profiling import ProfileEntry, choose_fixed_heterogeneous
from repro.errors import ExperimentError
from repro.experiments.common import ExperimentSetup, build_runtime
from repro.experiments.sweep import Job, SweepRunner, SweepSpec, run_spec
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.units import KB, MB
from repro.utils.stats import mean
from repro.workloads.runner import run_application
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

#: Workload sizes of the motivation experiments (paper Section 3).
ISOLATION_SIZES: Mapping[str, int] = {
    "Small": 16 * KB,
    "Medium": 256 * KB,
    "Large": 4 * MB,
}


@dataclass(frozen=True)
class IsolationMeasurement:
    """One (accelerator, size, mode) measurement."""

    accelerator_name: str
    size_label: str
    footprint_bytes: int
    mode: CoherenceMode
    exec_cycles: float
    ddr_accesses: float


def _single_invocation_app(
    accelerator_name: str, footprint_bytes: int, repeats: int
) -> ApplicationSpec:
    """Application with a single thread invoking one accelerator ``repeats`` times."""
    thread = ThreadSpec(
        thread_id="iso",
        accelerator_chain=(accelerator_name,),
        footprint_bytes=footprint_bytes,
        loop_count=repeats,
        cpu_index=0,
    )
    phase = PhaseSpec(name="isolation", threads=(thread,))
    return ApplicationSpec(name=f"isolation-{accelerator_name}", phases=(phase,))


def measure_isolated(
    setup: ExperimentSetup,
    accelerator: AcceleratorDescriptor,
    footprint_bytes: int,
    mode: CoherenceMode,
    repeats: int = 1,
) -> Tuple[float, float]:
    """Run one accelerator alone under ``mode``; return mean (cycles, accesses).

    Every repeat starts from warm data (the invoking CPU initialised the
    buffer), and measurements include the invocation overhead — driver and
    cache flushes — as in the paper.
    """
    if footprint_bytes <= 0:
        raise ExperimentError("footprint must be positive")
    single = ExperimentSetup(
        name=f"{setup.name}-iso",
        soc_config=setup.soc_config,
        accelerators=[accelerator],
        seed=setup.seed,
    )
    soc, runtime = build_runtime(single, FixedPolicy(mode))
    app = _single_invocation_app(accelerator.name, footprint_bytes, repeats)
    result = run_application(soc, runtime, app)
    invocations = result.invocations
    if not invocations:
        raise ExperimentError("isolation run produced no invocations")
    return (
        mean([inv.total_cycles for inv in invocations]),
        mean([inv.ddr_accesses for inv in invocations]),
    )


def _isolation_job(params: Dict[str, object], rng) -> Dict[str, object]:
    """Sweep job: one (accelerator, size, mode) cell of the Figure 2 grid."""
    cycles, accesses = measure_isolated(
        params["setup"],  # type: ignore[arg-type]
        params["accelerator"],  # type: ignore[arg-type]
        int(params["footprint_bytes"]),  # type: ignore[arg-type]
        params["mode"],  # type: ignore[arg-type]
        repeats=int(params["repeats"]),  # type: ignore[arg-type]
    )
    return {"exec_cycles": cycles, "ddr_accesses": accesses}


def run_isolation_experiment(
    setup: ExperimentSetup,
    accelerators: Optional[Sequence[AcceleratorDescriptor]] = None,
    sizes: Optional[Mapping[str, int]] = None,
    modes: Sequence[CoherenceMode] = COHERENCE_MODES,
    repeats: int = 1,
    runner: Optional[SweepRunner] = None,
) -> List[IsolationMeasurement]:
    """Run the full Figure 2 sweep and return the raw measurements."""
    accelerators = list(accelerators) if accelerators is not None else list(setup.accelerators)
    sizes = dict(sizes) if sizes is not None else dict(ISOLATION_SIZES)
    grid: List[Tuple[int, AcceleratorDescriptor, str, int, CoherenceMode]] = [
        (index, accelerator, size_label, footprint, mode)
        for index, accelerator in enumerate(accelerators)
        for size_label, footprint in sizes.items()
        for mode in modes
    ]
    jobs = [
        Job(
            # The index keeps keys unique when an accelerator appears twice.
            key=f"{index}-{accelerator.name}/{size_label}/{mode.label}",
            fn=_isolation_job,
            params={
                "setup": setup,
                "accelerator": accelerator,
                "footprint_bytes": footprint,
                "mode": mode,
                "repeats": repeats,
            },
            seed=setup.seed,
        )
        for index, accelerator, size_label, footprint, mode in grid
    ]
    spec = SweepSpec(name=f"isolation-{setup.name}", jobs=jobs)
    outcome = run_spec(spec, runner)
    return [
        IsolationMeasurement(
            accelerator_name=accelerator.name,
            size_label=size_label,
            footprint_bytes=footprint,
            mode=mode,
            exec_cycles=float(payload["exec_cycles"]),
            ddr_accesses=float(payload["ddr_accesses"]),
        )
        for (index, accelerator, size_label, footprint, mode), payload in zip(
            grid, outcome.payloads.values()
        )
    ]


def normalize_isolation(
    measurements: Sequence[IsolationMeasurement],
    reference_mode: CoherenceMode = CoherenceMode.NON_COH_DMA,
) -> Dict[Tuple[str, str], Dict[str, Dict[str, float]]]:
    """Normalise the sweep per (accelerator, size) against ``reference_mode``.

    Returns ``{(accelerator, size): {mode_label: {"exec": x, "mem": y}}}``
    where both metrics are relative to the reference mode — the same
    normalisation as the bars of Figure 2.
    """
    grouped: Dict[Tuple[str, str], List[IsolationMeasurement]] = {}
    for measurement in measurements:
        grouped.setdefault(
            (measurement.accelerator_name, measurement.size_label), []
        ).append(measurement)

    normalised: Dict[Tuple[str, str], Dict[str, Dict[str, float]]] = {}
    for key, group in grouped.items():
        reference = next((m for m in group if m.mode is reference_mode), None)
        if reference is None:
            raise ExperimentError(f"no reference measurement for {key}")
        ref_exec = max(reference.exec_cycles, 1e-9)
        ref_mem = reference.ddr_accesses
        normalised[key] = {}
        for measurement in group:
            mem_ratio = (
                measurement.ddr_accesses / ref_mem if ref_mem > 0 else
                (0.0 if measurement.ddr_accesses == 0 else float("inf"))
            )
            normalised[key][measurement.mode.label] = {
                "exec": measurement.exec_cycles / ref_exec,
                "mem": mem_ratio,
            }
    return normalised


def best_mode_per_workload(
    measurements: Sequence[IsolationMeasurement],
) -> Dict[Tuple[str, str], CoherenceMode]:
    """Return the fastest mode for every (accelerator, size) pair."""
    best: Dict[Tuple[str, str], IsolationMeasurement] = {}
    for measurement in measurements:
        key = (measurement.accelerator_name, measurement.size_label)
        current = best.get(key)
        if current is None or measurement.exec_cycles < current.exec_cycles:
            best[key] = measurement
    return {key: measurement.mode for key, measurement in best.items()}


# ----------------------------------------------------------------------
# Profiling pass for the fixed-heterogeneous baseline
# ----------------------------------------------------------------------

def profile_accelerators(
    setup: ExperimentSetup,
    footprints: Optional[Sequence[int]] = None,
    modes: Sequence[CoherenceMode] = COHERENCE_MODES,
    runner: Optional[SweepRunner] = None,
) -> List[ProfileEntry]:
    """Profile every accelerator of ``setup`` alone across modes and footprints."""
    if footprints is None:
        config = setup.soc_config
        footprints = [
            config.accelerator_l2_bytes // 2,
            config.llc_partition_bytes // 2,
            config.total_llc_bytes // 2,
            config.total_llc_bytes * 2,
        ]
    # Profile each distinct accelerator once, even if bound to many tiles.
    distinct: Dict[str, AcceleratorDescriptor] = {}
    for descriptor in setup.accelerators:
        distinct.setdefault(descriptor.name, descriptor)

    has_private_cache = any(
        setup.soc_config.accelerator_has_cache(i)
        for i in range(setup.soc_config.num_accelerator_tiles)
    )
    grid: List[Tuple[int, AcceleratorDescriptor, int, CoherenceMode]] = [
        (index, descriptor, footprint, mode)
        for descriptor in distinct.values()
        for index, footprint in enumerate(footprints)
        for mode in modes
        if not (mode is CoherenceMode.FULL_COH and not has_private_cache)
    ]
    jobs = [
        Job(
            # The index keeps keys unique if a footprint is repeated.
            key=f"{descriptor.name}/{index}-{footprint}/{mode.label}",
            fn=_isolation_job,
            params={
                "setup": setup,
                "accelerator": descriptor,
                "footprint_bytes": footprint,
                "mode": mode,
                "repeats": 1,
            },
            seed=setup.seed,
        )
        for index, descriptor, footprint, mode in grid
    ]
    spec = SweepSpec(name=f"profile-{setup.name}", jobs=jobs)
    outcome = run_spec(spec, runner)
    return [
        ProfileEntry(
            accelerator_name=descriptor.name,
            mode=mode,
            footprint_bytes=footprint,
            total_cycles=float(payload["exec_cycles"]),
            ddr_accesses=float(payload["ddr_accesses"]),
        )
        for (index, descriptor, footprint, mode), payload in zip(
            grid, outcome.payloads.values()
        )
    ]


def build_fixed_hetero_policy(
    setup: ExperimentSetup, runner: Optional[SweepRunner] = None
) -> FixedHeterogeneousPolicy:
    """Profile ``setup`` and build its design-time fixed-heterogeneous policy."""
    profile = profile_accelerators(setup, runner=runner)
    return FixedHeterogeneousPolicy(choose_fixed_heterogeneous(profile))


def fixed_hetero_modes(
    setup: ExperimentSetup, runner: Optional[SweepRunner] = None
) -> Dict[str, CoherenceMode]:
    """Profile ``setup`` and return the per-accelerator design-time modes."""
    return choose_fixed_heterogeneous(profile_accelerators(setup, runner=runner))
