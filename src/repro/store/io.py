"""Byte-level document primitives: canonical JSON, digests, safe reads.

Every digest-bearing format in the repository is built from the same
three primitives, which therefore live here exactly once:

* **canonical JSON** — :func:`canonical_text` renders a payload with
  sorted keys and fixed separators, so the same logical document always
  produces the same bytes (and the same digest) on every platform;
* **content digests** — :func:`canonical_digest` is the SHA-256 of the
  canonical rendering (the digest stamped into manifests, cache entries,
  artifacts, and matrix cells), and :func:`document_sha256` is the
  SHA-256 of a file's *raw bytes* (the identity the tracking API reports
  so clients can verify a served document against the file on disk);
* **safe reads** — :func:`read_document` reads one whole JSON document
  and :func:`read_jsonl_records` reads a JSON-lines file under the
  crash-tolerance rule (a blank or truncated line decodes to ``None``
  instead of failing the whole file), both mapping every failure to
  :class:`~repro.errors.DocumentError`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import DocumentError
from repro.utils.fileio import read_json_document


def canonical_text(payload: object) -> str:
    """Canonical JSON rendering: sorted keys, fixed separators.

    Serialisation failures (:class:`TypeError`/:class:`ValueError` for a
    non-JSON payload) propagate unchanged so callers can wrap them in
    their own domain error with a contextual message.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_digest(payload: object) -> str:
    """SHA-256 of the canonical JSON rendering of ``payload``.

    This is *the* content digest of the repository: sweep manifests,
    result-cache entries, trained-policy artifacts, and transfer-matrix
    cells all stamp exactly this value, so equal digests always mean
    byte-identical canonical payloads across formats.
    """
    return hashlib.sha256(canonical_text(payload).encode("utf-8")).hexdigest()


def document_sha256(path: Union[str, Path]) -> str:
    """SHA-256 of the raw bytes of the file at ``path``.

    Unlike :func:`canonical_digest` this hashes the document *as
    written* (indentation and key order included), so it identifies the
    exact on-disk file — the gate the tracking API exposes for
    byte-for-byte verification against served documents.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise DocumentError(f"cannot read document {path}: {exc}") from exc
    return hashlib.sha256(blob).hexdigest()


def read_document(path: Union[str, Path]) -> object:
    """Read one whole JSON document, mapping failures to ``DocumentError``.

    A missing file, an unreadable file, and invalid JSON each raise
    :class:`~repro.errors.DocumentError` with a message naming the path
    and the failure, so CLI surfaces can print it verbatim.
    """
    path = Path(path)
    try:
        return read_json_document(path)
    except FileNotFoundError:
        raise DocumentError(f"document {path} does not exist") from None
    except OSError as exc:
        raise DocumentError(f"cannot read document {path}: {exc}") from exc
    except ValueError as exc:
        raise DocumentError(f"document {path} is not valid JSON: {exc}") from None


def decode_jsonl_line(line: str) -> Optional[object]:
    """JSON-decode one line; ``None`` for a blank or truncated line.

    This is the crash-tolerance rule of every JSON-lines format in the
    repository: appending writers flush whole lines, so a crash can at
    worst truncate the final line, and a reader that maps undecodable
    lines to ``None`` loses only the record that was mid-write.
    """
    line = line.strip()
    if not line:
        return None
    try:
        return json.loads(line)
    except ValueError:
        return None


def read_jsonl_records(path: Union[str, Path]) -> List[Optional[object]]:
    """Read a JSON-lines file under the crash-tolerance rule.

    Returns one entry per physical line, in order — the decoded object,
    or ``None`` where the line was blank or truncated (see
    :func:`decode_jsonl_line`).  Positions are preserved so callers can
    apply structural rules ("the first line is the header") exactly as
    they would on the raw file.  An unreadable file raises
    :class:`~repro.errors.DocumentError`.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise DocumentError(f"cannot read document {path}: {exc}") from exc
    return [decode_jsonl_line(line) for line in lines]


__all__ = [
    "canonical_digest",
    "canonical_text",
    "decode_jsonl_line",
    "document_sha256",
    "read_document",
    "read_jsonl_records",
]
