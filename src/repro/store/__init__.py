"""Unified read side for the repository's on-disk document formats.

The repository writes five digest-bearing JSON formats — JSONL sweep
manifests, result-cache entries, ``BENCH_*.json`` perf reports,
trained-policy artifacts, and transfer matrices.  Each keeps its writer
with its subsystem; this package owns the *read side* once:

* :mod:`repro.store.io` — canonical JSON text and digests, raw-file
  SHA-256, whole-document reads, and the JSONL crash-tolerance rule;
* :mod:`repro.store.readers` — one typed reader per format, each
  validating structure and digests and raising
  :class:`~repro.errors.DocumentError` (or a subclass) on anything
  missing, corrupt, or tampered.

Built for every consumer that reads documents it did not just write:
``merge-shards`` fusing shard manifests, the CLIs' ``--check`` /
``--slo`` baselines, and the :mod:`repro.tracking` API, which serves
these documents over HTTP with digests clients can verify against the
files on disk.
"""

from repro.store.io import (
    canonical_digest,
    canonical_text,
    decode_jsonl_line,
    document_sha256,
    read_document,
    read_jsonl_records,
)
from repro.store.readers import (
    BENCH_SCHEMA,
    CacheEntry,
    MANIFEST_SUFFIX,
    MANIFEST_VERSION,
    MATRIX_FORMAT,
    MATRIX_VERSION,
    ManifestDocument,
    grid_digest,
    load_bench_report,
    load_cache_entry,
    load_model_artifact,
    load_sweep_manifest,
    load_transfer_matrix,
)

__all__ = [
    "BENCH_SCHEMA",
    "CacheEntry",
    "MANIFEST_SUFFIX",
    "MANIFEST_VERSION",
    "MATRIX_FORMAT",
    "MATRIX_VERSION",
    "ManifestDocument",
    "canonical_digest",
    "canonical_text",
    "decode_jsonl_line",
    "document_sha256",
    "grid_digest",
    "load_bench_report",
    "load_cache_entry",
    "load_model_artifact",
    "load_sweep_manifest",
    "load_transfer_matrix",
    "read_document",
    "read_jsonl_records",
]
