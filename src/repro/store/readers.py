"""Typed readers for every on-disk document format the repository writes.

One reader per format, each returning a typed value and raising
:class:`~repro.errors.DocumentError` (or a subclass) on anything
missing, corrupt, or failing its digest gate:

==============================  =============================================
reader                          format
==============================  =============================================
:func:`load_sweep_manifest`     JSONL sweep manifests (header + result lines,
                                crash-tolerant trailing line)
:func:`load_cache_entry`        :class:`ResultCache` entry files
:func:`load_bench_report`       ``BENCH_*.json`` perf reports
:func:`load_model_artifact`     trained-policy artifacts (digest-gated)
:func:`load_transfer_matrix`    models x scenarios transfer matrices
==============================  =============================================

The writers stay where they are (manifests in
:mod:`repro.experiments.sweep.manifest`, artifacts in
:mod:`repro.models.artifact`, ...); what is unified here is the *read
side*, so a rule like the manifest trailing-line tolerance exists in one
place and every consumer — the sweep runner, ``merge-shards``, the
tracking API — reads through it.  This module deliberately imports
nothing from the layers it serves; shared format constants therefore
live here and are re-exported by their historical homes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import DocumentError
from repro.store.io import canonical_digest, decode_jsonl_line, read_document
from repro.utils.fileio import read_json_document

#: Sweep-manifest layout version (re-exported by ``...sweep.manifest``).
MANIFEST_VERSION = 1

#: Filename suffix of sweep manifests (re-exported by ``...sweep.manifest``).
MANIFEST_SUFFIX = ".manifest.jsonl"

#: Perf-report format identifier (re-exported by :mod:`repro.perf.report`).
BENCH_SCHEMA = "repro-perf/1"

#: Transfer-matrix format marker (re-exported by ``repro.models.transfer``).
MATRIX_FORMAT = "cohmeleon-transfer-matrix"

#: Transfer-matrix layout version (re-exported by ``repro.models.transfer``).
MATRIX_VERSION = 1


def grid_digest(grid: Sequence[Tuple[str, str]]) -> str:
    """Content digest of a grid: its sorted ``(key, fingerprint)`` pairs."""
    blob = json.dumps(sorted(grid), separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Sweep manifests
# ----------------------------------------------------------------------
@dataclass
class ManifestDocument:
    """The parsed content of one sweep-manifest file.

    A plain value object — no appending, no rewriting — so every
    consumer that only *reads* manifests (``merge-shards`` discovery,
    the tracking API, resume verification) shares one parse.
    """

    #: The file the document was read from.
    path: Path
    #: Name of the sweep spec the manifest records.
    spec_name: str
    #: ``(key, fingerprint)`` pairs in grid order.
    grid: List[Tuple[str, str]] = field(default_factory=list)
    #: ``(index, count)`` of the shard, or ``None`` for a whole grid.
    shard: Optional[Tuple[int, int]] = None
    #: The ``grid_digest`` value the header recorded at write time.
    recorded_grid_digest: Optional[str] = None
    #: fingerprint -> payload digest for every recorded completion.
    completed: Dict[str, str] = field(default_factory=dict)

    @property
    def grid_digest(self) -> str:
        """Content digest recomputed from the grid (order-invariant)."""
        return grid_digest(self.grid)

    def progress(self) -> Dict[str, int]:
        """Completion counters: total, completed, pending jobs."""
        done = sum(
            1 for _, fingerprint in self.grid if fingerprint in self.completed
        )
        return {
            "total": len(self.grid),
            "completed": done,
            "pending": len(self.grid) - done,
        }


def load_sweep_manifest(path: Union[str, Path]) -> ManifestDocument:
    """Parse a sweep manifest, tolerating a truncated final line.

    This is the one implementation of the manifest crash-tolerance rule:
    result lines are appended and flushed as jobs complete, so a killed
    sweep can at worst truncate the final line, and a line that does not
    decode is skipped rather than failing the file (see
    :func:`repro.store.io.decode_jsonl_line`).  Structural failures —
    an empty file, a missing or malformed header, an incompatible
    version — raise :class:`~repro.errors.DocumentError`.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise DocumentError(f"cannot read manifest {path}: {exc}") from exc
    if not lines:
        raise DocumentError(f"manifest {path} is empty")
    header = decode_jsonl_line(lines[0])
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise DocumentError(f"manifest {path} does not start with a header line")
    if header.get("version") != MANIFEST_VERSION:
        raise DocumentError(
            f"manifest {path} has version {header.get('version')!r}; "
            f"this build reads version {MANIFEST_VERSION}"
        )
    try:
        grid = [(entry["key"], entry["fingerprint"]) for entry in header["jobs"]]
        spec_name = str(header["spec"])
        raw_shard = header.get("shard")
        shard = (
            (int(raw_shard["index"]), int(raw_shard["count"])) if raw_shard else None
        )
    except (KeyError, TypeError) as exc:
        raise DocumentError(
            f"manifest {path} has a malformed header: {exc}"
        ) from exc
    recorded = header.get("grid_digest")
    completed: Dict[str, str] = {}
    for line in lines[1:]:
        record = decode_jsonl_line(line)
        if (
            isinstance(record, dict)
            and record.get("kind") == "result"
            and isinstance(record.get("fingerprint"), str)
            and isinstance(record.get("digest"), str)
        ):
            completed[record["fingerprint"]] = record["digest"]
    return ManifestDocument(
        path=path,
        spec_name=spec_name,
        grid=grid,
        shard=shard,
        recorded_grid_digest=str(recorded) if recorded is not None else None,
        completed=completed,
    )


# ----------------------------------------------------------------------
# Result-cache entries
# ----------------------------------------------------------------------
@dataclass
class CacheEntry:
    """One committed result-cache entry, digest-stamped."""

    #: The file the entry was read from.
    path: Path
    #: Job fingerprint the entry is addressed by.
    fingerprint: str
    #: Human-readable job key.
    key: str
    #: The cached payload document.
    payload: Dict[str, object] = field(default_factory=dict)
    #: Canonical content digest of the payload (recomputed on load).
    digest: str = ""


def load_cache_entry(path: Union[str, Path]) -> CacheEntry:
    """Read one result-cache entry file, strictly.

    Unlike :meth:`ResultCache.get` — which treats a corrupt entry as a
    miss so the job simply re-executes — this reader is for consumers
    that must *account* for the entry (merging, tracking): every failure
    raises :class:`~repro.errors.DocumentError`.  The returned entry
    carries the recomputed canonical digest of its payload.
    """
    path = Path(path)
    entry = read_document(path)
    if not isinstance(entry, dict) or not isinstance(entry.get("payload"), dict):
        raise DocumentError(f"cache entry {path} is malformed (no payload object)")
    fingerprint = str(entry.get("fingerprint", ""))
    if not fingerprint:
        raise DocumentError(f"cache entry {path} records no fingerprint")
    if fingerprint != path.stem:
        raise DocumentError(
            f"cache entry {path} records fingerprint {fingerprint[:12]}…, "
            "which does not match its filename"
        )
    payload: Dict[str, object] = entry["payload"]
    return CacheEntry(
        path=path,
        fingerprint=fingerprint,
        key=str(entry.get("key", "")),
        payload=payload,
        digest=canonical_digest(payload),
    )


# ----------------------------------------------------------------------
# BENCH perf reports
# ----------------------------------------------------------------------
def load_bench_report(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate one ``BENCH_*.json`` perf report.

    The schema gate matches :func:`repro.perf.report.load_report` (which
    delegates here): the document must be an object carrying
    ``schema == "repro-perf/1"`` and a ``benchmarks`` section.
    """
    path = Path(path)
    try:
        report = read_json_document(path)
    except FileNotFoundError:
        raise DocumentError(f"perf report {path} does not exist") from None
    except OSError as exc:
        raise DocumentError(f"cannot read perf report {path}: {exc}") from exc
    except ValueError as error:
        raise DocumentError(
            f"perf report {path} is not valid JSON: {error}"
        ) from None
    if not isinstance(report, dict) or report.get("schema") != BENCH_SCHEMA:
        raise DocumentError(
            f"perf report {path} does not carry schema {BENCH_SCHEMA!r}"
        )
    if not isinstance(report.get("benchmarks"), dict):
        raise DocumentError(f"perf report {path} has no benchmarks section")
    return report


# ----------------------------------------------------------------------
# Trained-policy artifacts
# ----------------------------------------------------------------------
def load_model_artifact(
    path: Union[str, Path], expected_digest: Optional[str] = None
):
    """Read, parse, and digest-verify one trained-policy artifact.

    Delegates to :func:`repro.models.artifact.load_artifact`; every
    failure raises :class:`~repro.errors.ModelError`, which *is* a
    :class:`~repro.errors.DocumentError`, so store consumers need only
    the common base.  Imported lazily so reading manifests or reports
    never pays for the models stack.
    """
    from repro.models.artifact import load_artifact

    return load_artifact(path, expected_digest=expected_digest)


# ----------------------------------------------------------------------
# Transfer matrices
# ----------------------------------------------------------------------
def load_transfer_matrix(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate one transfer-matrix document.

    The matrix writer (``repro.models.transfer.TransferMatrix``) had no
    matching reader before this module; the tracking API and tests read
    matrices through this gate: format marker, layout version, and the
    presence of the ``cells`` list are all checked.
    """
    path = Path(path)
    document = read_document(path)
    if not isinstance(document, dict):
        raise DocumentError(f"{path}: transfer matrix must be a JSON object")
    if document.get("format") != MATRIX_FORMAT:
        raise DocumentError(
            f"{path}: not a transfer matrix "
            f"(format {document.get('format')!r}, expected {MATRIX_FORMAT!r})"
        )
    if document.get("version") != MATRIX_VERSION:
        raise DocumentError(
            f"{path}: transfer-matrix layout version "
            f"{document.get('version')!r} is not supported "
            f"(this build reads version {MATRIX_VERSION})"
        )
    if not isinstance(document.get("cells"), list):
        raise DocumentError(f"{path}: transfer matrix has no cells list")
    return document


__all__ = [
    "BENCH_SCHEMA",
    "CacheEntry",
    "MANIFEST_SUFFIX",
    "MANIFEST_VERSION",
    "MATRIX_FORMAT",
    "MATRIX_VERSION",
    "ManifestDocument",
    "grid_digest",
    "load_bench_report",
    "load_cache_entry",
    "load_model_artifact",
    "load_sweep_manifest",
    "load_transfer_matrix",
]
