"""Exception hierarchy for the Cohmeleon reproduction library.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries without masking programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A SoC, accelerator, or workload configuration is invalid."""


class AllocationError(ReproError):
    """The address-space allocator could not satisfy a buffer request."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class CoherenceError(ReproError):
    """A coherence mode was requested that the platform does not support."""


class PolicyError(ReproError):
    """A coherence-selection policy was misused or misconfigured."""


class ExperimentError(ReproError):
    """An experiment harness was given inconsistent parameters."""


class SweepError(ReproError):
    """A sweep specification, job, or result cache is invalid."""


class ModelError(ReproError):
    """A trained-policy artifact or model registry is invalid.

    Raised by :mod:`repro.models` for corrupt, truncated, tampered, or
    version-incompatible artifacts and for bad registry operations.
    """


class ServingError(ReproError):
    """The policy-serving service was misconfigured or misused.

    Raised by :mod:`repro.serving` for invalid requests, transport
    failures, and server configuration problems.
    """
