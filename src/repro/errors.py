"""Exception hierarchy for the Cohmeleon reproduction library.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries without masking programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A SoC, accelerator, or workload configuration is invalid."""


class AllocationError(ReproError):
    """The address-space allocator could not satisfy a buffer request."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class CoherenceError(ReproError):
    """A coherence mode was requested that the platform does not support."""


class PolicyError(ReproError):
    """A coherence-selection policy was misused or misconfigured."""


class ExperimentError(ReproError):
    """An experiment harness was given inconsistent parameters."""


class SweepError(ReproError):
    """A sweep specification, job, or result cache is invalid."""


class DocumentError(ReproError):
    """An on-disk JSON/JSONL document is missing, corrupt, or tampered.

    Raised by :mod:`repro.store` — the unified read side for every
    digest-bearing document format the repository writes (sweep
    manifests, result-cache entries, BENCH reports, model artifacts,
    transfer matrices) — when a document cannot be read, parsed, or
    verified against its recorded digest.
    """


class ModelError(DocumentError):
    """A trained-policy artifact or model registry is invalid.

    Raised by :mod:`repro.models` for corrupt, truncated, tampered, or
    version-incompatible artifacts and for bad registry operations.
    A model artifact is one of the repository's digest-bearing document
    formats, so this is a :class:`DocumentError`.
    """


class ServingError(ReproError):
    """The policy-serving service was misconfigured or misused.

    Raised by :mod:`repro.serving` for invalid requests, transport
    failures, and server configuration problems.
    """


class TrackingError(ReproError):
    """The experiment-tracking service was misconfigured or misused.

    Raised by :mod:`repro.tracking` for invalid requests, missing
    document directories, and server configuration problems.
    """
