"""Shared-hardware contention model.

Every shared component of the SoC that can become a bottleneck — a DRAM
channel, an LLC port, the NoC ingress link of a memory tile — is modelled
as a :class:`BandwidthResource`: a first-come-first-served server with a
fixed per-request latency and a finite bandwidth in bytes per cycle.

A transfer request made at simulation time ``now`` for ``nbytes`` bytes is
served no earlier than the completion of all previously accepted requests.
This captures the qualitative contention behaviour the paper measures in
Figure 3: when many accelerators funnel traffic into the same LLC partition
or DRAM controller, each sees its effective bandwidth shrink and its
latency grow, while private paths are unaffected.

``serve`` is called once per DMA chunk per resource, which puts it on the
simulation's hot path — both classes use ``__slots__`` and the method body
avoids redundant conversions (see ``repro.perf``).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimulationError


class ResourceStats:
    """Usage counters for one shared resource."""

    __slots__ = ("requests", "bytes_served", "busy_cycles", "queue_cycles")

    def __init__(
        self,
        requests: int = 0,
        bytes_served: int = 0,
        busy_cycles: float = 0.0,
        queue_cycles: float = 0.0,
    ) -> None:
        self.requests = requests
        self.bytes_served = bytes_served
        self.busy_cycles = busy_cycles
        self.queue_cycles = queue_cycles

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "requests": self.requests,
            "bytes_served": self.bytes_served,
            "busy_cycles": self.busy_cycles,
            "queue_cycles": self.queue_cycles,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceStats(requests={self.requests}, bytes_served={self.bytes_served}, "
            f"busy_cycles={self.busy_cycles}, queue_cycles={self.queue_cycles})"
        )


class BandwidthResource:
    """FCFS server with fixed latency and finite bandwidth.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports.
    bytes_per_cycle:
        Sustained throughput of the resource.
    latency:
        Fixed cycles added to every request (pipeline / access latency).
    """

    __slots__ = ("name", "bytes_per_cycle", "latency", "next_free", "stats")

    def __init__(self, name: str, bytes_per_cycle: float, latency: float = 0.0) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError(f"resource {name!r} must have positive bandwidth")
        if latency < 0:
            raise SimulationError(f"resource {name!r} has negative latency")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.next_free = 0.0
        self.stats = ResourceStats()

    def service_time(self, nbytes: float) -> float:
        """Return the uncontended service time for a request of ``nbytes``."""
        return self.latency + max(float(nbytes), 0.0) / self.bytes_per_cycle

    def serve(self, now: float, nbytes: float, extra_latency: float = 0.0) -> float:
        """Accept a request at time ``now`` and return its completion time.

        ``extra_latency`` models per-request overheads that occupy the
        requester but not the resource pipeline (for example a directory
        recall round-trip) — it delays completion but does not extend the
        resource's busy window.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        now = float(now)
        next_free = self.next_free
        start = now if now > next_free else next_free
        latency = self.latency
        busy = float(nbytes) / self.bytes_per_cycle
        finish = start + latency + busy
        self.next_free = finish
        stats = self.stats
        stats.requests += 1
        stats.bytes_served += int(nbytes)
        stats.busy_cycles += latency + busy
        stats.queue_cycles += start - now
        if extra_latency > 0.0:
            return finish + extra_latency
        return finish

    def peek(self, now: float, nbytes: float) -> float:
        """Return the completion time a request *would* get, without booking it."""
        start = max(float(now), self.next_free)
        return start + self.service_time(nbytes) - self.latency + self.latency

    def utilization(self, elapsed_cycles: float) -> float:
        """Return the fraction of ``elapsed_cycles`` this resource was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(self.stats.busy_cycles / elapsed_cycles, 1.0)

    def reset(self) -> None:
        """Clear the queue state and counters (used between experiments)."""
        self.next_free = 0.0
        self.stats = ResourceStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BandwidthResource(name={self.name!r}, "
            f"bytes_per_cycle={self.bytes_per_cycle}, latency={self.latency})"
        )
