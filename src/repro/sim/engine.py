"""Generator-based discrete-event engine.

A *process* is a Python generator.  Each time it yields, it hands control
back to the engine together with either:

* a non-negative number — "resume me after this many cycles", or
* a :class:`ResumeAt` object — "resume me at this absolute time".

The engine keeps a priority queue of ``(time, sequence, process)`` entries
and always advances the process with the earliest resume time.  When a
generator returns (raises ``StopIteration``) its process is marked finished
and an optional completion callback fires.

This is intentionally much smaller than simpy: the SoC model only needs
time-ordered interleaving of invocation processes, because contention on
shared hardware is resolved analytically by the FCFS resources in
:mod:`repro.sim.resources`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

from repro.errors import SimulationError

#: Type alias for the generator objects the engine runs.
ProcessGenerator = Generator[object, float, None]


@dataclass(frozen=True)
class ResumeAt:
    """Yield value meaning "resume this process at absolute time ``time``"."""

    time: float


@dataclass
class Process:
    """Bookkeeping for one running generator."""

    name: str
    generator: ProcessGenerator = field(repr=False)
    finished: bool = False
    start_time: float = 0.0
    finish_time: Optional[float] = None
    on_complete: Optional[Callable[["Process"], None]] = field(default=None, repr=False)


class Engine:
    """Discrete-event engine with a cycle-based clock.

    Example
    -------
    >>> engine = Engine()
    >>> log = []
    >>> def worker(tag, delay):
    ...     yield delay
    ...     log.append((tag, engine.now))
    >>> _ = engine.spawn("a", worker("a", 10))
    >>> _ = engine.spawn("b", worker("b", 5))
    >>> engine.run()
    >>> log
    [('b', 5.0), ('a', 10.0)]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[tuple] = []
        self._sequence = itertools.count()
        self._processes: List[Process] = []
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        generator: ProcessGenerator,
        start_delay: float = 0.0,
        on_complete: Optional[Callable[[Process], None]] = None,
    ) -> Process:
        """Register ``generator`` as a process starting after ``start_delay``."""
        if start_delay < 0:
            raise SimulationError(f"negative start delay {start_delay} for {name}")
        process = Process(
            name=name,
            generator=generator,
            start_time=self.now + start_delay,
            on_complete=on_complete,
        )
        self._processes.append(process)
        self._push(self.now + start_delay, process, first=True)
        return process

    def _push(self, time: float, process: Process, first: bool = False) -> None:
        heapq.heappush(self._queue, (time, next(self._sequence), process, first))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until no events remain (or ``until`` / ``max_events`` is hit).

        Returns the simulation time at which execution stopped.
        """
        while self._queue:
            time, _seq, process, first = heapq.heappop(self._queue)
            if until is not None and time > until:
                # Put the event back — with its original sequence number, so
                # same-time events keep their order across a pause/resume.
                heapq.heappush(self._queue, (time, _seq, process, first))
                self.now = until
                return self.now
            if time < self.now - 1e-9:
                raise SimulationError(
                    f"event time {time} precedes current time {self.now}"
                )
            self.now = max(self.now, time)
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError("event budget exhausted; likely a livelock")
            self._step(process, first)
        return self.now

    def _step(self, process: Process, first: bool) -> None:
        try:
            if first:
                yielded = next(process.generator)
            else:
                yielded = process.generator.send(self.now)
        except StopIteration:
            process.finished = True
            process.finish_time = self.now
            if process.on_complete is not None:
                process.on_complete(process)
            return
        resume_time = self._resolve_yield(yielded)
        self._push(resume_time, process, first=False)

    def _resolve_yield(self, yielded: object) -> float:
        if isinstance(yielded, ResumeAt):
            target = float(yielded.time)
            if target < self.now - 1e-9:
                raise SimulationError(
                    f"process asked to resume in the past ({target} < {self.now})"
                )
            return max(target, self.now)
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(f"process yielded a negative delay {delay}")
            return self.now + delay
        raise SimulationError(
            f"process yielded unsupported value {yielded!r}; "
            "yield a delay in cycles or a ResumeAt"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def processes(self) -> List[Process]:
        """All processes ever spawned on this engine."""
        return list(self._processes)

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Number of events processed since construction."""
        return self._events_processed

    def all_finished(self) -> bool:
        """Return ``True`` when every spawned process has completed."""
        return all(process.finished for process in self._processes)
