"""Generator-based discrete-event engine.

A *process* is a Python generator.  Each time it yields, it hands control
back to the engine together with either:

* a non-negative number — "resume me after this many cycles", or
* a :class:`ResumeAt` object — "resume me at this absolute time".

The engine keeps a priority queue of ``(time, sequence, process)`` entries
and always advances the process with the earliest resume time.  When a
generator returns (raises ``StopIteration``) its process is marked finished
and an optional completion callback fires.

This is intentionally much smaller than simpy: the SoC model only needs
time-ordered interleaving of invocation processes, because contention on
shared hardware is resolved analytically by the FCFS resources in
:mod:`repro.sim.resources`.

The :meth:`Engine.run` loop dispatches every simulated event, so it is the
single hottest call site of the whole library (see ``repro.perf``): the
loop keeps the heap primitives and queue in locals, and
:class:`Process` uses ``__slots__`` to keep per-event attribute access
cheap.

The engine ships in the two core backends of :mod:`repro.utils.backend`
(selected at construction): the ``reference`` backend pops one event per
loop iteration, while the ``vectorized`` backend drains event *cohorts* —
after advancing the clock once it steps every queued event carrying
exactly that timestamp before re-checking ``until`` and the clock.
Cohort members still leave the heap one ``heappop`` at a time, so
same-time events retain their sequence order (the PR 1 tie-order
contract) and zero-delay re-arms join the live cohort exactly as they
would in the reference loop; the differential tests assert both loops
produce identical schedules.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, List, Optional

from repro.errors import SimulationError
from repro.utils.backend import active_backend

#: Type alias for the generator objects the engine runs.
ProcessGenerator = Generator[object, float, None]


class ResumeAt:
    """Yield value meaning "resume this process at absolute time ``time``"."""

    __slots__ = ("time",)

    def __init__(self, time: float) -> None:
        self.time = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResumeAt(time={self.time})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResumeAt) and other.time == self.time

    def __hash__(self) -> int:
        return hash((ResumeAt, self.time))


class Process:
    """Bookkeeping for one running generator."""

    __slots__ = ("name", "generator", "finished", "start_time", "finish_time", "on_complete")

    def __init__(
        self,
        name: str,
        generator: ProcessGenerator,
        finished: bool = False,
        start_time: float = 0.0,
        finish_time: Optional[float] = None,
        on_complete: Optional[Callable[["Process"], None]] = None,
    ) -> None:
        self.name = name
        self.generator = generator
        self.finished = finished
        self.start_time = start_time
        self.finish_time = finish_time
        self.on_complete = on_complete

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Process(name={self.name!r}, finished={self.finished}, "
            f"start_time={self.start_time}, finish_time={self.finish_time})"
        )


class Engine:
    """Discrete-event engine with a cycle-based clock.

    Example
    -------
    >>> engine = Engine()
    >>> log = []
    >>> def worker(tag, delay):
    ...     yield delay
    ...     log.append((tag, engine.now))
    >>> _ = engine.spawn("a", worker("a", 10))
    >>> _ = engine.spawn("b", worker("b", 5))
    >>> engine.run()
    >>> log
    [('b', 5.0), ('a', 10.0)]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[tuple] = []
        self._sequence = itertools.count()
        self._processes: List[Process] = []
        self._events_processed = 0
        self.backend = active_backend()
        self._vectorized = self.backend == "vectorized"

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        generator: ProcessGenerator,
        start_delay: float = 0.0,
        on_complete: Optional[Callable[[Process], None]] = None,
    ) -> Process:
        """Register ``generator`` as a process starting after ``start_delay``."""
        if start_delay < 0:
            raise SimulationError(f"negative start delay {start_delay} for {name}")
        process = Process(
            name=name,
            generator=generator,
            start_time=self.now + start_delay,
            on_complete=on_complete,
        )
        self._processes.append(process)
        self._push(self.now + start_delay, process, first=True)
        return process

    def _push(self, time: float, process: Process, first: bool = False) -> None:
        heapq.heappush(self._queue, (time, next(self._sequence), process, first))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until no events remain (or ``until`` / ``max_events`` is hit).

        Returns the simulation time at which execution stopped.  Exhausting
        the ``max_events`` budget while events are still pending raises a
        :class:`~repro.errors.SimulationError` naming the number of pending
        events — a silent partial run would be indistinguishable from a
        completed one (see ``docs/architecture.md``).
        """
        if self._vectorized:
            return self._run_cohorts(until, max_events)
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        step = self._step
        events_this_run = 0
        # The per-event counter lives in a local for speed; the finally
        # block folds it into the persistent count on every exit path
        # (completion, pause at `until`, budget exhaustion, process error).
        try:
            while queue:
                entry = heappop(queue)
                time = entry[0]
                if until is not None and time > until:
                    # Put the event back — with its original sequence number,
                    # so same-time events keep their order across a
                    # pause/resume.
                    heappush(queue, entry)
                    self.now = until
                    return self.now
                if time > self.now:
                    self.now = time
                elif time < self.now - 1e-9:
                    raise SimulationError(
                        f"event time {time} precedes current time {self.now}"
                    )
                if events_this_run >= max_events:
                    heappush(queue, entry)
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at t={self.now} "
                        f"with {len(queue)} events still pending; likely a livelock"
                    )
                events_this_run += 1
                step(entry[2], entry[3])
        finally:
            self._events_processed += events_this_run
        return self.now

    def _run_cohorts(self, until: Optional[float], max_events: int) -> float:
        """The vectorized run loop: drain same-timestamp cohorts.

        Checks ``until``, advances the clock, and validates event time once
        per *timestamp* instead of once per event, then steps every queued
        event at that timestamp.  Cohort members are still removed with
        individual ``heappop`` calls, so the ``(time, sequence)`` order —
        including zero-delay re-arms that join the cohort mid-drain — is
        exactly the reference loop's order.
        """
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        step = self._step
        events_this_run = 0
        try:
            while queue:
                entry = heappop(queue)
                time = entry[0]
                if until is not None and time > until:
                    # Put the event back — with its original sequence number,
                    # so same-time events keep their order across a
                    # pause/resume.
                    heappush(queue, entry)
                    self.now = until
                    return self.now
                if time > self.now:
                    self.now = time
                elif time < self.now - 1e-9:
                    raise SimulationError(
                        f"event time {time} precedes current time {self.now}"
                    )
                # Drain the cohort: this entry plus every event queued at
                # exactly `time`, including ones pushed by the cohort's own
                # steps.  Members are at the already-admitted timestamp, so
                # the until/clock checks above need not repeat per event.
                while True:
                    if events_this_run >= max_events:
                        heappush(queue, entry)
                        raise SimulationError(
                            f"event budget of {max_events} exhausted at "
                            f"t={self.now} with {len(queue)} events still "
                            "pending; likely a livelock"
                        )
                    events_this_run += 1
                    step(entry[2], entry[3])
                    if not queue or queue[0][0] != time:
                        break
                    entry = heappop(queue)
        finally:
            self._events_processed += events_this_run
        return self.now

    def _step(self, process: Process, first: bool) -> None:
        try:
            if first:
                yielded = next(process.generator)
            else:
                yielded = process.generator.send(self.now)
        except StopIteration:
            process.finished = True
            process.finish_time = self.now
            if process.on_complete is not None:
                process.on_complete(process)
            return
        # Inline fast path for the overwhelmingly common yield of a plain
        # delay; ResumeAt and error cases take the slow path below.
        cls = type(yielded)
        if cls is float or cls is int:
            if yielded < 0:
                raise SimulationError(f"process yielded a negative delay {yielded}")
            resume_time = self.now + yielded
        else:
            resume_time = self._resolve_yield(yielded)
        heapq.heappush(
            self._queue, (resume_time, next(self._sequence), process, False)
        )

    def _resolve_yield(self, yielded: object) -> float:
        if isinstance(yielded, ResumeAt):
            target = float(yielded.time)
            if target < self.now - 1e-9:
                raise SimulationError(
                    f"process asked to resume in the past ({target} < {self.now})"
                )
            return target if target > self.now else self.now
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(f"process yielded a negative delay {delay}")
            return self.now + delay
        raise SimulationError(
            f"process yielded unsupported value {yielded!r}; "
            "yield a delay in cycles or a ResumeAt"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def processes(self) -> List[Process]:
        """All processes ever spawned on this engine."""
        return list(self._processes)

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Number of events processed since construction."""
        return self._events_processed

    def all_finished(self) -> bool:
        """Return ``True`` when every spawned process has completed."""
        return all(process.finished for process in self._processes)
