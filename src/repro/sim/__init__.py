"""A small discrete-event simulation kernel.

The SoC performance model executes accelerator invocations as cooperating
processes on a shared clock.  Processes are plain Python generators that
yield either a delay in cycles or an absolute resume time; shared hardware
resources (DRAM channels, LLC ports, NoC links) are modelled with FCFS
bandwidth servers that translate a transfer request into a completion time.
"""

from repro.sim.engine import Engine, Process
from repro.sim.resources import BandwidthResource, ResourceStats

__all__ = ["Engine", "Process", "BandwidthResource", "ResourceStats"]
