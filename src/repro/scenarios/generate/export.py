"""Byte-stable TOML/JSON export of generated scenario documents.

Both renderers are deterministic functions of the document mapping:
:func:`document_json` is canonical JSON (sorted keys, fixed separators),
and :func:`document_toml` is a small emitter covering exactly the value
shapes the generator produces and the scenario loader accepts — strings,
integers, floats, booleans, flat arrays, nested tables, and arrays of
tables (recursively, for ``[[application.phases.threads]]``).  Exported
text round-trips: ``tomllib.loads(document_toml(doc)) == doc`` and
``json.loads(document_json(doc)) == doc``, which the property tests
assert for arbitrary generated documents.
"""

from __future__ import annotations

import json
from typing import List, Mapping, Sequence

from repro.errors import ConfigurationError


def document_json(document: Mapping[str, object]) -> str:
    """Render a scenario document as canonical JSON (newline-terminated)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _toml_scalar(value: object, where: str) -> str:
    """Render one TOML scalar value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ConfigurationError(f"{where}: non-finite float {value!r}")
        # repr() round-trips floats exactly; TOML floats need a decimal point.
        text = repr(value)
        return text if ("." in text or "e" in text) else f"{text}.0"
    if isinstance(value, str):
        # json.dumps produces a valid TOML basic string for any text free
        # of control characters, which scenario documents are.
        return json.dumps(value)
    raise ConfigurationError(
        f"{where}: cannot render {type(value).__name__} as a TOML scalar"
    )


def _is_table_array(value: object) -> bool:
    return (
        isinstance(value, Sequence)
        and not isinstance(value, (str, bytes))
        and len(value) > 0
        and all(isinstance(item, Mapping) for item in value)
    )


def _emit_table(
    table: Mapping[str, object], prefix: str, lines: List[str]
) -> None:
    """Emit one table: scalars first, then sub-tables, then table arrays."""
    nested: List[str] = []
    arrays: List[str] = []
    for key, value in table.items():
        where = f"{prefix}.{key}" if prefix else key
        if isinstance(value, Mapping):
            nested.append(key)
        elif _is_table_array(value):
            arrays.append(key)
        elif isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            items = ", ".join(
                _toml_scalar(item, f"{where}[{index}]")
                for index, item in enumerate(value)
            )
            lines.append(f"{key} = [{items}]")
        else:
            lines.append(f"{key} = {_toml_scalar(value, where)}")
    for key in nested:
        path = f"{prefix}.{key}" if prefix else key
        lines.append("")
        lines.append(f"[{path}]")
        _emit_table(table[key], path, lines)  # type: ignore[arg-type]
    for key in arrays:
        path = f"{prefix}.{key}" if prefix else key
        for item in table[key]:  # type: ignore[union-attr]
            lines.append("")
            lines.append(f"[[{path}]]")
            _emit_table(item, path, lines)


def document_toml(document: Mapping[str, object]) -> str:
    """Render a scenario document as TOML (newline-terminated).

    Key order follows the document's insertion order, which the generator
    fixes — so the same document always renders to the same bytes.
    """
    lines: List[str] = []
    _emit_table(document, "", lines)
    while lines and not lines[0]:
        lines.pop(0)
    return "\n".join(lines) + "\n"
