"""The declarative :class:`GenerationSpec` and its TOML/JSON file format.

A generation-spec file describes a *distribution* over scenarios rather
than one scenario.  All keys are optional; the defaults generate small,
quick-to-simulate platforms spanning the paper's Table 4 design space::

    [generation]
    name_prefix = "gen"
    count = 16
    seed = 0

    [topology]
    tiles = [2, 12]            # accelerator tiles, inclusive range
    cpus = [1, 4]
    mem_tiles = [1, 4]
    llc_partition = ["128 KB", "512 KB"]   # power-of-two sizes inside
    l2 = ["16 KB", "64 KB"]
    cacheless_probability = 0.0            # per-tile chance of no L2

    [workload]
    accelerators = ["FFT", "GEMM", "SPMV"] # pool (default: full library)
    phases = [2, 4]
    threads = [1, 4]
    chain = [1, 3]
    loops = [1, 2]
    size_classes = ["S", "M", "L", "XL"]
    size_weights = [0.3, 0.35, 0.2, 0.15]

    [nonstationary]
    phase_shift_probability = 0.35  # regime change between phases
    burst_probability = 0.25        # bursty-arrival phases
    burst_threads = [6, 10]

    [run]
    policies = ["fixed-non-coh-dma", "cohmeleon"]
    training_iterations = 2
    line_bytes = "256 B"

Ranges are two-element arrays ``[lo, hi]`` (inclusive) or a single value
for a fixed choice.  Every validation failure raises
:class:`~repro.errors.ConfigurationError` naming the offending key, the
same contract as the scenario-file loader.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.accelerators.library import accelerator_by_name, accelerator_names
from repro.errors import ConfigurationError
from repro.experiments.common import EXPERIMENT_LINE_BYTES, STANDARD_POLICY_KINDS
from repro.scenarios.loader import parse_bytes
from repro.scenarios.scenario import DEFAULT_SCENARIO_POLICIES
from repro.units import KB

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python <= 3.10
    tomllib = None  # type: ignore[assignment]

#: Size-class labels the workload section accepts (loader-compatible).
SIZE_CLASS_LABELS = ("S", "M", "L", "XL")


def _check_range(value: Tuple[int, int], where: str, minimum: int = 1) -> None:
    lo, hi = value
    if lo > hi:
        raise ConfigurationError(f"{where}: empty range [{lo}, {hi}]")
    if lo < minimum:
        raise ConfigurationError(f"{where}: lower bound must be >= {minimum}, got {lo}")


def _check_probability(value: float, where: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{where}: probability must be in [0, 1], got {value}")


@dataclass(frozen=True)
class TopologySpec:
    """Distribution over SoC platforms: tile counts, caches, NoC shape.

    The NoC shape is not sampled directly: the generator derives the
    smallest (optionally widened) mesh that fits the sampled tile counts,
    so every sampled topology passes :class:`~repro.soc.config.SoCConfig`
    validation by construction.
    """

    #: Inclusive range of accelerator-tile counts.
    tiles: Tuple[int, int] = (2, 12)
    #: Inclusive range of processor-tile counts.
    cpus: Tuple[int, int] = (1, 4)
    #: Inclusive range of memory-tile counts (DRAM controller + LLC slice).
    mem_tiles: Tuple[int, int] = (1, 4)
    #: LLC-partition size bounds; sampled at powers of two within.
    llc_partition_bytes: Tuple[int, int] = (128 * KB, 512 * KB)
    #: Private (L2) cache size bounds; sampled at powers of two within.
    l2_bytes: Tuple[int, int] = (16 * KB, 64 * KB)
    #: Per-tile probability of lacking a private cache (cf. SoC3).
    cacheless_probability: float = 0.0

    def __post_init__(self) -> None:
        _check_range(self.tiles, "[topology].tiles")
        _check_range(self.cpus, "[topology].cpus")
        _check_range(self.mem_tiles, "[topology].mem_tiles")
        _check_range(self.llc_partition_bytes, "[topology].llc_partition", minimum=4 * KB)
        _check_range(self.l2_bytes, "[topology].l2", minimum=1 * KB)
        _check_probability(self.cacheless_probability, "[topology].cacheless_probability")


@dataclass(frozen=True)
class WorkloadSpec:
    """Distribution over application mixes: phases, threads, chains, sizes."""

    #: Accelerator pool scenarios draw from (canonical library names).
    accelerators: Tuple[str, ...] = ()
    #: Inclusive range of phases per application.
    phases: Tuple[int, int] = (2, 4)
    #: Inclusive range of concurrent threads per (steady) phase.
    threads: Tuple[int, int] = (1, 4)
    #: Inclusive range of accelerator-chain lengths per thread.
    chain: Tuple[int, int] = (1, 3)
    #: Inclusive range of per-thread loop counts.
    loops: Tuple[int, int] = (1, 2)
    #: Workload size classes threads draw from (resolved per instance).
    size_classes: Tuple[str, ...] = SIZE_CLASS_LABELS
    #: Relative probability of each size class (aligned with the above).
    size_weights: Tuple[float, ...] = (0.3, 0.35, 0.2, 0.15)

    def __post_init__(self) -> None:
        _check_range(self.phases, "[workload].phases")
        _check_range(self.threads, "[workload].threads")
        _check_range(self.chain, "[workload].chain")
        _check_range(self.loops, "[workload].loops")
        if not self.size_classes:
            raise ConfigurationError("[workload].size_classes: must not be empty")
        for label in self.size_classes:
            if label not in SIZE_CLASS_LABELS:
                raise ConfigurationError(
                    f"[workload].size_classes: unknown size class {label!r} "
                    f"(expected one of {list(SIZE_CLASS_LABELS)})"
                )
        if len(self.size_classes) != len(self.size_weights):
            raise ConfigurationError(
                "[workload]: size_classes and size_weights must align"
            )
        if any(weight < 0 for weight in self.size_weights) or not any(
            weight > 0 for weight in self.size_weights
        ):
            raise ConfigurationError(
                "[workload].size_weights: need non-negative weights, at least one > 0"
            )
        # Canonicalize accelerator names eagerly so a typo fails at spec
        # parse time, not in the middle of generating scenario #937.
        object.__setattr__(
            self,
            "accelerators",
            tuple(
                accelerator_by_name(name).name
                for name in (self.accelerators or accelerator_names())
            ),
        )


@dataclass(frozen=True)
class NonStationarySpec:
    """Knobs for traffic that shifts under a policy's feet.

    Phase shifts resample the *regime* (the accelerator subset and the
    size-class weights threads draw from) between phases — the workload a
    frozen policy was tuned for simply stops arriving.  Burst phases model
    bursty arrivals: many short, small-footprint threads at once.
    """

    #: Probability that a phase boundary resamples the traffic regime.
    phase_shift_probability: float = 0.0
    #: Probability that a phase is a bursty-arrival phase.
    burst_probability: float = 0.0
    #: Inclusive range of concurrent threads in a burst phase.
    burst_threads: Tuple[int, int] = (6, 10)

    def __post_init__(self) -> None:
        _check_probability(self.phase_shift_probability, "[nonstationary].phase_shift_probability")
        _check_probability(self.burst_probability, "[nonstationary].burst_probability")
        _check_range(self.burst_threads, "[nonstationary].burst_threads")


@dataclass(frozen=True)
class GenerationSpec:
    """Everything that determines a fleet of generated scenarios.

    Generation is a pure function of ``(spec, seed)``: the spec carries
    the distributions, the seed (plus a scenario index) selects one sample
    from them.  :func:`spec_digest` hashes the canonical rendering, so two
    specs compare equal exactly when they generate identical fleets.
    """

    #: Scenario names are ``<name_prefix>-<digest12>``.
    name_prefix: str = "gen"
    #: Number of scenarios ``generate_scenarios`` emits by default.
    count: int = 16
    #: Base seed every per-scenario stream derives from.
    seed: int = 0
    #: Platform distribution.
    topology: TopologySpec = field(default_factory=TopologySpec)
    #: Application-mix distribution.
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: Non-stationary traffic knobs.
    nonstationary: NonStationarySpec = field(default_factory=NonStationarySpec)
    #: Policy comparison stamped on every generated scenario.
    policies: Tuple[str, ...] = DEFAULT_SCENARIO_POLICIES
    #: Online-training budget stamped on every generated scenario.
    training_iterations: int = 2
    #: Cache-model granularity stamped on every generated scenario.
    line_bytes: int = EXPERIMENT_LINE_BYTES

    def __post_init__(self) -> None:
        if not self.name_prefix or any(ch.isspace() for ch in self.name_prefix):
            raise ConfigurationError(
                f"[generation].name_prefix: must be non-empty without whitespace, "
                f"got {self.name_prefix!r}"
            )
        if self.count < 1:
            raise ConfigurationError(
                f"[generation].count: must be >= 1, got {self.count}"
            )
        if self.training_iterations < 0:
            raise ConfigurationError(
                "[run].training_iterations: must be >= 0, "
                f"got {self.training_iterations}"
            )
        if self.line_bytes < 2 or self.line_bytes % 2:
            raise ConfigurationError(
                f"[run].line_bytes: must be a positive even value, got {self.line_bytes}"
            )
        if not self.policies:
            raise ConfigurationError("[run].policies: must not be empty")
        unknown = [k for k in self.policies if k not in STANDARD_POLICY_KINDS]
        if unknown:
            raise ConfigurationError(
                f"[run].policies: unknown policy kinds {unknown}; "
                f"expected a subset of {list(STANDARD_POLICY_KINDS)}"
            )


# ----------------------------------------------------------------------
# Mapping <-> spec round trip
# ----------------------------------------------------------------------

def spec_to_mapping(spec: GenerationSpec) -> Dict[str, object]:
    """Render ``spec`` as the plain JSON-able mapping the file format uses.

    The exact inverse of :func:`generation_spec_from_mapping`; sweep jobs
    embed this mapping in their parameters so worker processes can rebuild
    the spec (and regenerate the scenario) without any shared state.
    """
    return {
        "generation": {
            "name_prefix": spec.name_prefix,
            "count": spec.count,
            "seed": spec.seed,
        },
        "topology": {
            "tiles": list(spec.topology.tiles),
            "cpus": list(spec.topology.cpus),
            "mem_tiles": list(spec.topology.mem_tiles),
            "llc_partition": list(spec.topology.llc_partition_bytes),
            "l2": list(spec.topology.l2_bytes),
            "cacheless_probability": spec.topology.cacheless_probability,
        },
        "workload": {
            "accelerators": list(spec.workload.accelerators),
            "phases": list(spec.workload.phases),
            "threads": list(spec.workload.threads),
            "chain": list(spec.workload.chain),
            "loops": list(spec.workload.loops),
            "size_classes": list(spec.workload.size_classes),
            "size_weights": list(spec.workload.size_weights),
        },
        "nonstationary": {
            "phase_shift_probability": spec.nonstationary.phase_shift_probability,
            "burst_probability": spec.nonstationary.burst_probability,
            "burst_threads": list(spec.nonstationary.burst_threads),
        },
        "run": {
            "policies": list(spec.policies),
            "training_iterations": spec.training_iterations,
            "line_bytes": spec.line_bytes,
        },
    }


def spec_digest(spec: GenerationSpec) -> str:
    """SHA-256 digest of the spec's canonical mapping rendering."""
    text = json.dumps(spec_to_mapping(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _as_table(value: object, where: str) -> Mapping[str, object]:
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"{where}: expected a table/object, got {type(value).__name__}"
        )
    return value


def _as_int(value: object, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{where}: expected an integer, got {value!r}")
    return value


def _as_number(value: object, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{where}: expected a number, got {value!r}")
    return float(value)


def _as_range(value: object, where: str) -> Tuple[int, int]:
    """Parse an inclusive ``[lo, hi]`` range (or a single fixed value)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        fixed = _as_int(value, where)
        return (fixed, fixed)
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        if len(value) != 2:
            raise ConfigurationError(
                f"{where}: expected [lo, hi] (two elements), got {len(value)}"
            )
        return (_as_int(value[0], f"{where}[0]"), _as_int(value[1], f"{where}[1]"))
    raise ConfigurationError(
        f"{where}: expected an integer or a [lo, hi] array, got {value!r}"
    )


def _as_bytes_range(value: object, where: str) -> Tuple[int, int]:
    """Parse a range whose endpoints are byte counts (``"256 KB"`` etc.)."""
    if isinstance(value, (str, int)) and not isinstance(value, bool):
        fixed = parse_bytes(value, where)
        return (fixed, fixed)
    if isinstance(value, Sequence) and not isinstance(value, bytes):
        if len(value) != 2:
            raise ConfigurationError(
                f"{where}: expected [lo, hi] (two elements), got {len(value)}"
            )
        return (
            parse_bytes(value[0], f"{where}[0]"),
            parse_bytes(value[1], f"{where}[1]"),
        )
    raise ConfigurationError(
        f"{where}: expected a byte count or a [lo, hi] array, got {value!r}"
    )


def _as_str_list(value: object, where: str) -> List[str]:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ConfigurationError(f"{where}: expected a list of strings, got {value!r}")
    out: List[str] = []
    for index, item in enumerate(value):
        if not isinstance(item, str) or not item:
            raise ConfigurationError(
                f"{where}[{index}]: expected a non-empty string, got {item!r}"
            )
        out.append(item)
    return out


def _as_float_list(value: object, where: str) -> List[float]:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ConfigurationError(f"{where}: expected a list of numbers, got {value!r}")
    return [_as_number(item, f"{where}[{index}]") for index, item in enumerate(value)]


def _check_unknown_keys(
    mapping: Mapping[str, object], allowed: Sequence[str], where: str
) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown key {unknown[0]!r} (allowed: {sorted(allowed)})"
        )


def generation_spec_from_mapping(document: Mapping[str, object]) -> GenerationSpec:
    """Build a :class:`GenerationSpec` from a parsed TOML/JSON document."""
    _check_unknown_keys(
        document,
        ("generation", "topology", "workload", "nonstationary", "run"),
        "generation spec",
    )
    gen = _as_table(document.get("generation", {}), "[generation]")
    _check_unknown_keys(gen, ("name_prefix", "count", "seed"), "[generation]")
    topo = _as_table(document.get("topology", {}), "[topology]")
    _check_unknown_keys(
        topo,
        ("tiles", "cpus", "mem_tiles", "llc_partition", "l2", "cacheless_probability"),
        "[topology]",
    )
    work = _as_table(document.get("workload", {}), "[workload]")
    _check_unknown_keys(
        work,
        ("accelerators", "phases", "threads", "chain", "loops", "size_classes", "size_weights"),
        "[workload]",
    )
    nonstat = _as_table(document.get("nonstationary", {}), "[nonstationary]")
    _check_unknown_keys(
        nonstat,
        ("phase_shift_probability", "burst_probability", "burst_threads"),
        "[nonstationary]",
    )
    run = _as_table(document.get("run", {}), "[run]")
    _check_unknown_keys(
        run, ("policies", "training_iterations", "line_bytes"), "[run]"
    )

    topology_defaults = TopologySpec()
    workload_defaults = WorkloadSpec()
    nonstationary_defaults = NonStationarySpec()
    generation_defaults = GenerationSpec()

    name_prefix = gen.get("name_prefix", generation_defaults.name_prefix)
    if not isinstance(name_prefix, str):
        raise ConfigurationError(
            f"[generation].name_prefix: expected a string, got {name_prefix!r}"
        )
    topology = TopologySpec(
        tiles=(
            _as_range(topo["tiles"], "[topology].tiles")
            if "tiles" in topo
            else topology_defaults.tiles
        ),
        cpus=(
            _as_range(topo["cpus"], "[topology].cpus")
            if "cpus" in topo
            else topology_defaults.cpus
        ),
        mem_tiles=(
            _as_range(topo["mem_tiles"], "[topology].mem_tiles")
            if "mem_tiles" in topo
            else topology_defaults.mem_tiles
        ),
        llc_partition_bytes=(
            _as_bytes_range(topo["llc_partition"], "[topology].llc_partition")
            if "llc_partition" in topo
            else topology_defaults.llc_partition_bytes
        ),
        l2_bytes=(
            _as_bytes_range(topo["l2"], "[topology].l2")
            if "l2" in topo
            else topology_defaults.l2_bytes
        ),
        cacheless_probability=_as_number(
            topo.get("cacheless_probability", topology_defaults.cacheless_probability),
            "[topology].cacheless_probability",
        ),
    )
    workload = WorkloadSpec(
        accelerators=tuple(
            _as_str_list(work["accelerators"], "[workload].accelerators")
            if "accelerators" in work
            else ()
        ),
        phases=(
            _as_range(work["phases"], "[workload].phases")
            if "phases" in work
            else workload_defaults.phases
        ),
        threads=(
            _as_range(work["threads"], "[workload].threads")
            if "threads" in work
            else workload_defaults.threads
        ),
        chain=(
            _as_range(work["chain"], "[workload].chain")
            if "chain" in work
            else workload_defaults.chain
        ),
        loops=(
            _as_range(work["loops"], "[workload].loops")
            if "loops" in work
            else workload_defaults.loops
        ),
        size_classes=tuple(
            _as_str_list(work["size_classes"], "[workload].size_classes")
            if "size_classes" in work
            else workload_defaults.size_classes
        ),
        size_weights=tuple(
            _as_float_list(work["size_weights"], "[workload].size_weights")
            if "size_weights" in work
            else workload_defaults.size_weights
        ),
    )
    nonstationary = NonStationarySpec(
        phase_shift_probability=_as_number(
            nonstat.get(
                "phase_shift_probability",
                nonstationary_defaults.phase_shift_probability,
            ),
            "[nonstationary].phase_shift_probability",
        ),
        burst_probability=_as_number(
            nonstat.get(
                "burst_probability", nonstationary_defaults.burst_probability
            ),
            "[nonstationary].burst_probability",
        ),
        burst_threads=(
            _as_range(nonstat["burst_threads"], "[nonstationary].burst_threads")
            if "burst_threads" in nonstat
            else nonstationary_defaults.burst_threads
        ),
    )
    return GenerationSpec(
        name_prefix=name_prefix,
        count=_as_int(gen.get("count", generation_defaults.count), "[generation].count"),
        seed=_as_int(gen.get("seed", generation_defaults.seed), "[generation].seed"),
        topology=topology,
        workload=workload,
        nonstationary=nonstationary,
        policies=tuple(
            _as_str_list(run["policies"], "[run].policies")
            if "policies" in run
            else generation_defaults.policies
        ),
        training_iterations=_as_int(
            run.get("training_iterations", generation_defaults.training_iterations),
            "[run].training_iterations",
        ),
        line_bytes=(
            parse_bytes(run["line_bytes"], "[run].line_bytes")
            if "line_bytes" in run
            else generation_defaults.line_bytes
        ),
    )


def load_generation_spec(path: Union[str, Path]) -> GenerationSpec:
    """Load a :class:`GenerationSpec` from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read generation spec {path}: {exc}") from exc
    if path.suffix == ".toml":
        if tomllib is None:
            raise ConfigurationError(
                f"generation spec {path}: TOML support requires Python >= 3.11; "
                "use a .json spec file instead"
            )
        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ConfigurationError(
                f"generation spec {path}: invalid TOML: {exc}"
            ) from exc
    elif path.suffix == ".json":
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ConfigurationError(
                f"generation spec {path}: invalid JSON: {exc}"
            ) from exc
    else:
        raise ConfigurationError(
            f"generation spec {path}: unsupported extension {path.suffix!r} "
            "(expected .toml or .json)"
        )
    if not isinstance(document, Mapping):
        raise ConfigurationError(
            f"generation spec {path}: top level must be a table/object"
        )
    try:
        return generation_spec_from_mapping(document)
    except ConfigurationError as exc:
        raise ConfigurationError(f"generation spec {path}: {exc}") from None
