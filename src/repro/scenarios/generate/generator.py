"""Sample :class:`GenerationSpec` distributions into scenario documents.

:func:`generate_document` is the heart of the subpackage: a pure function
``(spec, index) -> scenario document`` where the document is the exact
TOML/JSON mapping schema :mod:`repro.scenarios.loader` validates.  Every
random draw flows through :class:`~repro.utils.rng.SeededRNG` streams
derived from ``(spec.seed, index)``, so regenerating with the same spec is
byte-identical — see the package docstring for the full contract.

The sampled dimensions:

* **topology** — accelerator/CPU/memory tile counts, power-of-two cache
  sizes, and a mesh NoC shape derived to fit the sampled tiles (with
  occasional slack rows/columns, so memory-tile placement and average hop
  distance vary across scenarios);
* **binding** — a per-scenario subset of the accelerator library, with
  instance counts distributed over the available tiles;
* **workload** — explicit phase plans whose threads carry symbolic size
  classes (resolved per training/testing instance by the loader, so the
  two instances differ exactly like builtin scenarios);
* **non-stationarity** — regime shifts that resample the accelerator pool
  and size-class weights between phases, and bursty-arrival phases of
  many short small-footprint threads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from math import isqrt
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenarios.generate.spec import (
    GenerationSpec,
    generation_spec_from_mapping,
    spec_to_mapping,
)
from repro.scenarios.loader import load_scenario_mapping
from repro.scenarios.scenario import Scenario
from repro.units import KB
from repro.utils.rng import SeededRNG, derive_seed

#: Size-class labels in ascending footprint order (burst phases bias small).
_CLASS_ORDER = ("S", "M", "L", "XL")


def _identity_mapping(spec: GenerationSpec) -> Dict[str, object]:
    """The spec mapping with ``count`` stripped: scenario *identity*.

    ``count`` selects how many scenarios to emit, not what any one of them
    contains — generating 10 or 1000 scenarios from the same spec must
    yield the same first 10, the same digests, and therefore the same
    sweep-job fingerprints.
    """
    mapping = spec_to_mapping(spec)
    generation = dict(mapping["generation"])  # type: ignore[arg-type]
    generation.pop("count", None)
    mapping["generation"] = generation
    return mapping


def scenario_digest(spec: GenerationSpec, seed: int) -> str:
    """Content digest of the scenario ``(spec, seed)`` generates.

    The digest covers the count-stripped spec mapping plus the derived
    per-scenario seed, so it identifies the generated content without
    having to materialize it; it prefixes the scenario name, flows into
    every sweep-job fingerprint, and is what ``generate --digests`` and
    the CI fuzz lane assert stability of.
    """
    basis = {"spec": _identity_mapping(spec), "seed": seed}
    text = json.dumps(basis, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _scenario_seed(spec: GenerationSpec, index: int) -> int:
    """The per-scenario root seed (stable in ``spec.seed`` and ``index``)."""
    return derive_seed(spec.seed, "generated-scenario", index)


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------

def _power_of_two_between(lo: int, hi: int, rng: SeededRNG) -> int:
    """Choose a power of two in ``[lo, hi]`` (or ``lo`` if none exists)."""
    candidates = [
        1 << exponent
        for exponent in range(max(lo, 1).bit_length() - 1, hi.bit_length() + 1)
        if lo <= (1 << exponent) <= hi
    ]
    if not candidates:
        return lo
    return rng.choice(candidates)


def _sample_topology(spec: GenerationSpec, rng: SeededRNG) -> Dict[str, object]:
    """Sample one ``[soc]`` table from the topology distribution."""
    topology = spec.topology
    tiles = rng.randint(*topology.tiles)
    cpus = rng.randint(*topology.cpus)
    mem_tiles = rng.randint(*topology.mem_tiles)
    total = tiles + cpus + mem_tiles
    # The smallest near-square mesh that fits, occasionally stretched a
    # row or padded a column: tile placement and hop distances vary while
    # SoCConfig validation holds by construction.
    rows = isqrt(total - 1) + 1
    if total > 2 and rng.maybe(0.35):
        rows += 1
    cols = -(-total // rows)
    if rng.maybe(0.25):
        cols += 1
    llc_partition = _power_of_two_between(*topology.llc_partition_bytes, rng=rng)
    l2 = _power_of_two_between(*topology.l2_bytes, rng=rng)
    # Keep the hierarchy an actual hierarchy: a private cache at least as
    # large as its LLC slice would invert the size-class ladder.
    l2 = max(min(l2, llc_partition // 2), 1 * KB)
    table: Dict[str, object] = {
        "accelerator_tiles": tiles,
        "noc_rows": rows,
        "noc_cols": cols,
        "cpus": cpus,
        "mem_tiles": mem_tiles,
        "llc_partition": llc_partition,
        "l2": l2,
    }
    cacheless = [
        tile for tile in range(tiles) if rng.maybe(topology.cacheless_probability)
    ]
    if cacheless:
        table["tiles_without_cache"] = cacheless
    return table


def _sample_binding(
    spec: GenerationSpec, tiles: int, rng: SeededRNG
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Sample the ``[[accelerators]]`` array: a subset of the pool + counts."""
    pool = list(spec.workload.accelerators)
    distinct = rng.randint(1, min(len(pool), tiles))
    names = rng.sample(pool, distinct)
    instances = rng.randint(distinct, tiles)
    counts = {name: 1 for name in names}
    for _ in range(instances - distinct):
        counts[rng.choice(names)] += 1
    entries = [{"name": name, "count": counts[name]} for name in names]
    return entries, names


@dataclass
class _Regime:
    """The traffic regime a (run of) phase(s) draws from."""

    pool: List[str]
    weights: List[float]


def _resample_regime(
    spec: GenerationSpec, bound: List[str], rng: SeededRNG
) -> _Regime:
    """Sample a fresh regime: an accelerator sub-pool and size weights."""
    pool = rng.sample(bound, rng.randint(1, len(bound)))
    weights = [
        weight * rng.uniform(0.5, 1.5) for weight in spec.workload.size_weights
    ]
    return _Regime(pool=pool, weights=weights)


def _burst_class(spec: GenerationSpec) -> str:
    """The smallest size class the spec allows (bursts are short and small)."""
    for label in _CLASS_ORDER:
        if label in spec.workload.size_classes:
            return label
    return spec.workload.size_classes[0]  # pragma: no cover - guarded by spec


def _sample_phases(
    spec: GenerationSpec, bound: List[str], rng: SeededRNG
) -> Tuple[List[Dict[str, object]], bool]:
    """Sample the ``[[application.phases]]`` plan; returns (phases, shifted)."""
    workload = spec.workload
    nonstationary = spec.nonstationary
    num_phases = rng.randint(*workload.phases)
    regime = _Regime(pool=list(bound), weights=list(workload.size_weights))
    phases: List[Dict[str, object]] = []
    shifted = False
    for phase_index in range(num_phases):
        suffix = ""
        if phase_index > 0 and rng.maybe(nonstationary.phase_shift_probability):
            regime = _resample_regime(spec, bound, rng)
            shifted = True
            suffix = "-shift"
        if rng.maybe(nonstationary.burst_probability):
            num_threads = rng.randint(*nonstationary.burst_threads)
            shifted = True
            threads = [
                {
                    "chain": [rng.choice(regime.pool)],
                    "size_class": _burst_class(spec),
                    "loops": 1,
                }
                for _ in range(num_threads)
            ]
            phases.append({"name": f"p{phase_index}-burst", "threads": threads})
            continue
        threads = []
        for _ in range(rng.randint(*workload.threads)):
            chain_length = rng.randint(*workload.chain)
            threads.append(
                {
                    "chain": [rng.choice(regime.pool) for _ in range(chain_length)],
                    "size_class": rng.weighted_choice(
                        list(workload.size_classes), regime.weights
                    ),
                    "loops": rng.randint(*workload.loops),
                }
            )
        phases.append({"name": f"p{phase_index}{suffix}", "threads": threads})
    return phases, shifted


# ----------------------------------------------------------------------
# Documents and scenarios
# ----------------------------------------------------------------------

def generate_document(spec: GenerationSpec, index: int) -> Dict[str, object]:
    """Generate scenario ``index`` of ``spec`` as a loader-schema document.

    Pure in ``(spec, index)``: calling this twice yields an equal mapping,
    and :func:`repro.scenarios.generate.export.document_json` /
    ``document_toml`` of it are byte-identical.  The returned document
    passes :func:`repro.scenarios.loader.load_scenario_mapping` unchanged.
    """
    if index < 0:
        raise ConfigurationError(f"scenario index must be >= 0, got {index}")
    seed = _scenario_seed(spec, index)
    digest = scenario_digest(spec, seed)
    name = f"{spec.name_prefix}-{digest[:12]}"
    rng = SeededRNG(seed)
    soc = _sample_topology(spec, rng.spawn("topology"))
    accelerators, bound = _sample_binding(
        spec, int(soc["accelerator_tiles"]), rng.spawn("binding")
    )
    phases, shifted = _sample_phases(spec, bound, rng.spawn("workload"))
    tags = ["generated", f"digest:{digest[:12]}"]
    if shifted:
        tags.append("non-stationary")
    scenario_table: Dict[str, object] = {
        "name": name,
        "title": (
            f"Generated platform {digest[:8]}: {soc['accelerator_tiles']} tiles, "
            f"{soc['noc_rows']}x{soc['noc_cols']} NoC, {soc['mem_tiles']} DDRs"
        ),
        "description": (
            f"Procedurally generated scenario #{index} (seed {seed}) of a "
            f"{spec.name_prefix!r} generation spec; content digest {digest[:12]}. "
            "See docs/generation.md for the determinism contract."
        ),
        "category": "generated",
        "tags": tags,
        "policies": list(spec.policies),
        "seed": seed,
        "training_iterations": spec.training_iterations,
        "line_bytes": spec.line_bytes,
    }
    return {
        "scenario": scenario_table,
        "soc": soc,
        "accelerators": accelerators,
        "application": {"phases": phases},
    }


@dataclass
class GeneratedScenario:
    """One generated scenario: its identity plus the emitted document."""

    #: Position in the generated fleet (0-based).
    index: int
    #: The per-scenario root seed derived from ``(spec.seed, index)``.
    seed: int
    #: Content digest derived from ``(spec, seed)`` (see :func:`scenario_digest`).
    digest: str
    #: Registry name (``<prefix>-<digest12>``).
    name: str
    #: The loader-schema scenario document.
    document: Dict[str, object] = field(repr=False)
    #: The count-stripped spec mapping this scenario regenerates from.
    spec_identity: Dict[str, object] = field(repr=False, default_factory=dict)

    def scenario(self) -> Scenario:
        """Materialize the document through the standard loader.

        The returned scenario carries ``metadata['generated']`` — the
        count-stripped spec mapping plus the index — which is how sweep
        workers regenerate it without shared registry state or a file on
        disk (see :func:`scenario_from_generated`).
        """
        scenario = load_scenario_mapping(self.document)
        scenario.metadata["generated"] = {
            "spec": self.spec_identity,
            "index": self.index,
        }
        scenario.metadata["digest"] = self.digest
        return scenario


def generate_scenario(spec: GenerationSpec, index: int = 0) -> GeneratedScenario:
    """Generate scenario ``index`` of ``spec`` (document + identity).

    Call :meth:`GeneratedScenario.scenario` on the result to materialize
    it through the standard loader.
    """
    seed = _scenario_seed(spec, index)
    document = generate_document(spec, index)
    return GeneratedScenario(
        index=index,
        seed=seed,
        digest=scenario_digest(spec, seed),
        name=str(document["scenario"]["name"]),  # type: ignore[index]
        document=document,
        spec_identity=_identity_mapping(spec),
    )


def generate_scenarios(
    spec: GenerationSpec, count: Optional[int] = None
) -> List[GeneratedScenario]:
    """Generate the first ``count`` scenarios of ``spec`` (default: spec.count)."""
    total = spec.count if count is None else count
    if total < 1:
        raise ConfigurationError(f"count must be >= 1, got {total}")
    return [generate_scenario(spec, index) for index in range(total)]


def scenario_from_generated(generated: Mapping[str, object]) -> Scenario:
    """Rebuild a generated scenario from its job-parameter mapping.

    ``generated`` is the ``{'spec': <identity mapping>, 'index': int}``
    structure :meth:`GeneratedScenario.scenario` stamps into scenario
    metadata and :func:`repro.scenarios.run.run_scenario` forwards as a
    job parameter — the generated-scenario analogue of re-loading a file
    scenario from its ``source`` path inside a worker process.
    """
    if not isinstance(generated, Mapping) or "spec" not in generated:
        raise ConfigurationError(
            "generated-scenario parameters must be a mapping with a 'spec' key"
        )
    spec_mapping = generated["spec"]
    if not isinstance(spec_mapping, Mapping):
        raise ConfigurationError("generated-scenario 'spec' must be a mapping")
    spec = generation_spec_from_mapping(spec_mapping)
    index = generated.get("index", 0)
    if isinstance(index, bool) or not isinstance(index, int):
        raise ConfigurationError(
            f"generated-scenario 'index' must be an integer, got {index!r}"
        )
    return generate_scenario(spec, index).scenario()
