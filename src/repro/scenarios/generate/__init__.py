"""Procedural scenario generation: from 16 curated scenarios to thousands.

The PR 2 registry loads scenarios from declarative data; this subpackage
exploits that by *generating* the data.  A :class:`GenerationSpec` (itself
loadable from a TOML/JSON file, see :mod:`repro.scenarios.generate.spec`)
describes distributions over SoC topologies (tile counts, cache sizes,
NoC shapes, memory-tile placement), workload mixes, and non-stationary
traffic (phase-shifting workloads, bursty arrivals).  The generator
(:mod:`repro.scenarios.generate.generator`) samples that space with
explicitly seeded RNG streams and emits ordinary scenario *documents* —
the exact TOML/JSON mapping schema :mod:`repro.scenarios.loader`
validates — so generated scenarios are first-class registry citizens:
they pass the same validation as builtins, run through the sharded sweep
runner, and can be written to disk as normal scenario files.

The determinism/digest contract:

* generation is a pure function of ``(spec, seed)`` — the same spec and
  seed yield a byte-identical document, byte-identical TOML/JSON export
  (:mod:`repro.scenarios.generate.export`), and an equal content digest;
* every generated scenario carries a SHA-256 digest derived from
  ``(spec, seed)``; the digest prefixes the scenario name, so identical
  specs produce identical scenario identities and therefore identical
  sweep-job fingerprints — re-running a sweep over regenerated scenarios
  is a pure cache hit;
* different seeds yield distinct digests and distinct scenarios.

``python -m repro.scenarios generate`` drives the generator from the
command line and ``python -m repro.scenarios matrix`` feeds fleets of
generated scenarios through the PR 5 ``--pretrained`` transfer evaluation
to produce a robustness/transfer matrix (see
:func:`repro.models.transfer_matrix` and ``docs/generation.md``).
"""

from repro.scenarios.generate.export import document_json, document_toml
from repro.scenarios.generate.generator import (
    GeneratedScenario,
    generate_document,
    generate_scenario,
    generate_scenarios,
    scenario_digest,
    scenario_from_generated,
)
from repro.scenarios.generate.spec import (
    GenerationSpec,
    NonStationarySpec,
    TopologySpec,
    WorkloadSpec,
    generation_spec_from_mapping,
    load_generation_spec,
    spec_digest,
    spec_to_mapping,
)

__all__ = [
    "GeneratedScenario",
    "GenerationSpec",
    "NonStationarySpec",
    "TopologySpec",
    "WorkloadSpec",
    "document_json",
    "document_toml",
    "generate_document",
    "generate_scenario",
    "generate_scenarios",
    "generation_spec_from_mapping",
    "load_generation_spec",
    "scenario_digest",
    "scenario_from_generated",
    "spec_digest",
    "spec_to_mapping",
]
