"""``python -m repro.scenarios`` — list, describe, and run scenarios.

Examples
--------
::

    python -m repro.scenarios list
    python -m repro.scenarios list --markdown --tag frontier
    python -m repro.scenarios describe multi-tenant-inference
    python -m repro.scenarios run quickstart --workers 4
    python -m repro.scenarios run soc5-autonomous --policies all
    python -m repro.scenarios run my-scenario.toml --no-cache
    python -m repro.scenarios run quickstart --pretrained qs-demo
    python -m repro.scenarios generate --spec fleet.toml --count 100 --validate
    python -m repro.scenarios matrix --all-models --spec fleet.toml --count 8
    python -m repro.scenarios gallery --check

``run`` accepts a registered scenario name or a path to a ``.toml`` /
``.json`` scenario file and dispatches one sweep job per policy through
the same runner/cache machinery as ``python -m repro.experiments``; a
rerun with an unchanged configuration is served entirely from the cache.
``generate`` samples scenarios from a declarative generation spec (see
``docs/generation.md``) and ``matrix`` evaluates saved trained-policy
models across a scenario fleet into a robustness/transfer matrix.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, TextIO

from repro.errors import ConfigurationError, ReproError
from repro.experiments.common import STANDARD_POLICY_KINDS
from repro.experiments.sweep.config import (
    RunConfig,
    add_runner_arguments,
    positive_int as _positive_int,
)
from repro.experiments.sweep.pool import SweepRunner
from repro.experiments.sweep.shard import ShardIncompleteError
from repro.scenarios.registry import all_scenarios, get_scenario
from repro.scenarios.scenario import Scenario
from repro.utils.tables import format_table


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the shared sweep-runner flags (``run`` and ``matrix``).

    The flag set is single-sourced from
    :func:`repro.experiments.sweep.config.add_runner_arguments`, so
    ``--workers``/``--backend``/``--cache-dir``/``--manifest-dir``/
    ``--resume``/``--shard``/``--jobs-per-lease`` behave exactly as they
    do in ``python -m repro.experiments``.
    """
    add_runner_arguments(parser)


def _runner_from_args(args: argparse.Namespace) -> tuple:
    """Build the (runner, workers, cache) triple from the shared flags."""
    config = RunConfig.from_args(args)
    return SweepRunner(config=config), config.workers, config.cache


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List, describe, and run registered workload scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser("list", help="list registered scenarios")
    list_parser.add_argument(
        "--markdown", action="store_true", help="emit a markdown table"
    )
    list_parser.add_argument("--tag", default=None, help="only scenarios with this tag")
    list_parser.add_argument(
        "--category", default=None, help="only scenarios in this category"
    )

    describe_parser = commands.add_parser(
        "describe", help="show one scenario's materialized configuration"
    )
    describe_parser.add_argument("name", help="scenario name or scenario-file path")
    describe_parser.add_argument(
        "--seed", type=int, default=None, help="materialize with this seed"
    )
    describe_parser.add_argument(
        "--json", action="store_true", dest="as_json", help="emit JSON"
    )

    run_parser = commands.add_parser(
        "run", help="run a scenario's policy comparison through the sweep runner"
    )
    run_parser.add_argument("name", help="scenario name or scenario-file path")
    _add_runner_arguments(run_parser)
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario's default seed"
    )
    run_parser.add_argument(
        "--training-iterations",
        type=int,
        default=None,
        metavar="N",
        help="override the scenario's training budget",
    )
    run_parser.add_argument(
        "--policies",
        default=None,
        metavar="KINDS",
        help="comma-separated policy kinds, or 'all' for the full standard set",
    )
    run_parser.add_argument(
        "--pretrained",
        default=None,
        metavar="MODEL",
        help="evaluate this trained-policy artifact (a registry name or an "
        "artifact-file path) frozen for the cohmeleon policy instead of "
        "retraining (see python -m repro.models)",
    )
    run_parser.add_argument(
        "--models-dir",
        default=None,
        metavar="DIR",
        help="model registry directory used by --pretrained "
        "(default: $REPRO_MODELS_DIR or .repro-models)",
    )

    generate_parser = commands.add_parser(
        "generate",
        help="procedurally generate scenarios from a declarative spec",
    )
    generate_parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="generation spec (.toml/.json; default: the built-in default spec)",
    )
    generate_parser.add_argument(
        "--count",
        type=_positive_int,
        default=None,
        metavar="N",
        help="override the spec's scenario count",
    )
    generate_parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's base seed"
    )
    generate_parser.add_argument(
        "--prefix",
        default=None,
        metavar="NAME",
        help="override the spec's scenario-name prefix",
    )
    generate_parser.add_argument(
        "--validate",
        action="store_true",
        help="additionally assemble each scenario's SoC and applications",
    )
    generate_parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write one scenario file per generated scenario into DIR",
    )
    generate_parser.add_argument(
        "--format",
        choices=("toml", "json"),
        default="toml",
        help="scenario-file format for --out (default: %(default)s)",
    )
    generate_parser.add_argument(
        "--digests",
        default=None,
        metavar="FILE",
        help="write the (spec digest, per-scenario digests) manifest as JSON",
    )

    matrix_parser = commands.add_parser(
        "matrix",
        help="evaluate saved models across a scenario fleet "
        "(robustness/transfer matrix)",
    )
    matrix_parser.add_argument(
        "--models",
        default=None,
        metavar="NAMES",
        help="comma-separated model-registry names (or artifact-file paths)",
    )
    matrix_parser.add_argument(
        "--all-models",
        action="store_true",
        help="evaluate every model in the registry",
    )
    matrix_parser.add_argument(
        "--models-dir",
        default=None,
        metavar="DIR",
        help="model registry directory (default: $REPRO_MODELS_DIR or .repro-models)",
    )
    matrix_parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="a scenario name or scenario-file path (repeatable)",
    )
    matrix_parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="also evaluate on scenarios generated from this spec",
    )
    matrix_parser.add_argument(
        "--count",
        type=_positive_int,
        default=None,
        metavar="N",
        help="override the generation spec's scenario count",
    )
    matrix_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed for every cell (default: each scenario's own seed)",
    )
    matrix_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the matrix document as canonical JSON",
    )
    _add_runner_arguments(matrix_parser)

    gallery_parser = commands.add_parser(
        "gallery", help="regenerate the README/docs scenario gallery"
    )
    gallery_parser.add_argument(
        "--check",
        action="store_true",
        help="verify the generated files are up to date instead of writing",
    )
    gallery_parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repository root (default: autodetected from this file)",
    )
    return parser


def _load_target(name: str) -> Scenario:
    """Resolve a CLI target: a registered name or a scenario-file path."""
    if name.endswith((".toml", ".json")):
        from repro.scenarios.loader import load_scenario_file

        return load_scenario_file(name)
    return get_scenario(name)


def _cmd_list(args: argparse.Namespace, out: TextIO) -> int:
    scenarios = all_scenarios()
    if args.tag:
        scenarios = [s for s in scenarios if args.tag in s.tags]
    if args.category:
        scenarios = [s for s in scenarios if s.category == args.category]
    if args.markdown:
        from repro.scenarios.gallery import gallery_table

        print(gallery_table(scenarios), file=out)
        return 0
    rows = [scenario.summary_row() for scenario in scenarios]
    print(
        format_table(
            ["scenario", "category", "SoC", "tiles", "NoC", "policies", "title"],
            rows,
            title=f"Registered scenarios ({len(rows)})",
        ),
        file=out,
    )
    return 0


def _cmd_describe(args: argparse.Namespace, out: TextIO) -> int:
    scenario = _load_target(args.name)
    description = scenario.describe(seed=args.seed)
    if args.as_json:
        print(json.dumps(description, indent=2, sort_keys=True), file=out)
        return 0
    print(f"{description['name']} — {description['title']}", file=out)
    print(f"category: {description['category']}  tags: {', '.join(description['tags']) or '-'}", file=out)
    if scenario.source:
        print(f"source: {scenario.source}", file=out)
    print(file=out)
    print(description["description"], file=out)
    print(file=out)
    soc = description["soc"]
    print(
        format_table(
            ["parameter", "value"], sorted(soc.items()), title="SoC configuration"
        ),
        file=out,
    )
    print(file=out)
    accelerators = description["accelerators"]
    print(
        format_table(
            ["accelerator", "instances"],
            sorted(accelerators.items()),
            title="Accelerator binding",
        ),
        file=out,
    )
    print(file=out)
    application = description["application"]
    print(
        format_table(
            ["phase", "threads", "invocations", "accelerators"],
            [
                [
                    phase["name"],
                    phase["threads"],
                    phase["invocations"],
                    ", ".join(phase["accelerators"]),
                ]
                for phase in application["phases"]
            ],
            title=f"Test application {application['name']} "
            f"({application['total_invocations']} invocations)",
        ),
        file=out,
    )
    print(file=out)
    print(
        f"policies: {', '.join(description['policies'])}\n"
        f"defaults: seed {description['default_seed']}, "
        f"{description['training_iterations']} training iterations",
        file=out,
    )
    return 0


def _cmd_run(args: argparse.Namespace, out: TextIO) -> int:
    from repro.scenarios.run import run_scenario

    scenario = _load_target(args.name)
    policy_kinds: Optional[List[str]] = None
    if args.policies is not None:
        if args.policies == "all":
            policy_kinds = list(STANDARD_POLICY_KINDS)
        else:
            policy_kinds = [kind for kind in args.policies.split(",") if kind]
    pretrained = None
    if args.pretrained is not None:
        from repro.models.registry import resolve_pretrained

        pretrained = resolve_pretrained(args.pretrained, models_dir=args.models_dir)
    runner, workers, cache = _runner_from_args(args)

    started = time.perf_counter()
    try:
        result = run_scenario(
            scenario,
            policy_kinds=policy_kinds,
            seed=args.seed,
            training_iterations=args.training_iterations,
            runner=runner,
            pretrained=pretrained,
        )
    except ShardIncompleteError as exc:
        # Same contract as python -m repro.experiments --shard: the owned
        # slice is checkpointed; the report needs the sibling shards.
        if runner.shard is None:
            raise
        print(
            f"[scenario] shard {runner.shard.label} of scenario "
            f"{scenario.name} complete; no report without the other "
            f"shards ({exc})",
            file=out,
        )
        return 0
    elapsed = time.perf_counter() - started

    print(result.report(), file=out)
    cache_note = "disabled" if cache is None else str(cache.cache_dir)
    pretrained_note = (
        "" if pretrained is None else f" pretrained={pretrained.digest[:12]}"
    )
    print(
        f"\n[scenario] name={scenario.name} jobs={len(result.evaluations)} "
        f"executed={result.executed} cache_hits={result.cache_hits} "
        f"resumed={result.resumed} "
        f"workers={workers} workers_used={result.workers_used} "
        f"cache={cache_note}{pretrained_note} elapsed={elapsed:.1f}s",
        file=out,
    )
    return 0


def _generation_spec(args: argparse.Namespace):
    """Load the generation spec and apply the CLI overrides."""
    from dataclasses import replace

    from repro.scenarios.generate import GenerationSpec, load_generation_spec

    spec = GenerationSpec() if args.spec is None else load_generation_spec(args.spec)
    overrides = {}
    if args.count is not None:
        overrides["count"] = args.count
    if getattr(args, "seed", None) is not None and args.command == "generate":
        overrides["seed"] = args.seed
    if getattr(args, "prefix", None) is not None:
        overrides["name_prefix"] = args.prefix
    return replace(spec, **overrides) if overrides else spec


def _cmd_generate(args: argparse.Namespace, out: TextIO) -> int:
    from repro.scenarios.generate import (
        document_json,
        document_toml,
        generate_scenarios,
        spec_digest,
    )

    spec = _generation_spec(args)
    generated = generate_scenarios(spec)
    rows: List[List[object]] = []
    for item in generated:
        # .scenario() runs the full loader validation; --validate goes
        # further and assembles the SoC plus both application instances.
        scenario = item.scenario()
        if args.validate:
            setup = scenario.build_setup()
            scenario.applications(setup)
        soc = item.document["soc"]
        phases = item.document["application"]["phases"]
        rows.append(
            [
                item.index,
                item.name,
                f"{soc['noc_rows']}x{soc['noc_cols']}",
                soc["accelerator_tiles"],
                len(phases),
                "yes" if "non-stationary" in item.document["scenario"]["tags"] else "no",
            ]
        )
    print(
        format_table(
            ["#", "scenario", "NoC", "tiles", "phases", "non-stationary"],
            rows,
            title=f"Generated scenarios (spec {spec_digest(spec)[:12]}, "
            f"seed {spec.seed})",
        ),
        file=out,
    )
    if args.out is not None:
        out_dir = Path(args.out)
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
            for item in generated:
                render = document_toml if args.format == "toml" else document_json
                path = out_dir / f"{item.name}.{args.format}"
                path.write_text(render(item.document), encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write generated scenarios under {out_dir}: {exc}"
            ) from exc
        print(f"wrote {len(generated)} scenario files to {out_dir}", file=out)
    if args.digests is not None:
        manifest = {
            "spec": spec_digest(spec),
            "seed": spec.seed,
            "scenarios": [
                {"index": item.index, "name": item.name, "digest": item.digest}
                for item in generated
            ],
        }
        try:
            Path(args.digests).write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write the digest manifest to {args.digests}: {exc}"
            ) from exc
    validated = " validated=yes" if args.validate else ""
    print(
        f"\n[generate] spec={spec_digest(spec)[:12]} count={len(generated)}"
        f"{validated}",
        file=out,
    )
    return 0


def _cmd_matrix(args: argparse.Namespace, out: TextIO) -> int:
    from repro.experiments.report import report_transfer_matrix
    from repro.models import ModelRegistry, transfer_matrix
    from repro.models.registry import resolve_pretrained
    from repro.scenarios.generate import generate_scenarios

    # Flag contradictions fail before any model/scenario loading starts.
    runner, workers, cache = _runner_from_args(args)
    if args.all_models:
        registry = ModelRegistry(args.models_dir)
        artifacts = registry.load_all()
        if not artifacts:
            raise ConfigurationError(
                f"no models registered under {registry.root}; train one "
                "with python -m repro.models train"
            )
    elif args.models:
        artifacts = [
            resolve_pretrained(name, models_dir=args.models_dir)
            for name in args.models.split(",")
            if name
        ]
    else:
        raise ConfigurationError("matrix needs --models NAMES or --all-models")

    scenarios = [_load_target(name) for name in (args.scenario or [])]
    if args.spec is not None:
        spec = _generation_spec(args)
        scenarios.extend(item.scenario() for item in generate_scenarios(spec))
    if not scenarios:
        raise ConfigurationError("matrix needs --scenario NAME and/or --spec FILE")

    started = time.perf_counter()
    try:
        matrix = transfer_matrix(artifacts, scenarios, runner=runner, seed=args.seed)
    except ShardIncompleteError as exc:
        if runner.shard is None:
            raise
        print(
            f"[matrix] shard {runner.shard.label} complete; no matrix "
            f"without the other shards ({exc})",
            file=out,
        )
        return 0
    elapsed = time.perf_counter() - started

    print(report_transfer_matrix(matrix), file=out)
    if args.out is not None:
        try:
            Path(args.out).write_text(matrix.dumps(), encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot write the matrix document to {args.out}: {exc}"
            ) from exc
        print(f"\nwrote matrix document to {args.out}", file=out)
    cache_note = "disabled" if cache is None else str(cache.cache_dir)
    print(
        f"\n[matrix] models={len(artifacts)} scenarios={len(scenarios)} "
        f"cells={len(matrix.cells)} executed={matrix.executed} "
        f"cache_hits={matrix.cache_hits} workers={workers} "
        f"workers_used={matrix.workers_used} cache={cache_note} "
        f"elapsed={elapsed:.1f}s",
        file=out,
    )
    return 0


def _cmd_gallery(args: argparse.Namespace, out: TextIO) -> int:
    from repro.scenarios.gallery import sync_gallery

    if args.root is not None:
        root = Path(args.root)
    else:
        root = Path(__file__).resolve().parents[3]
    try:
        stale = sync_gallery(root, check=args.check)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot sync the scenario gallery under {root}: {exc}"
        ) from exc
    if args.check and stale:
        print(
            "stale generated files: "
            + ", ".join(stale)
            + " (run `python -m repro.scenarios gallery`)",
            file=out,
        )
        return 1
    if stale:
        print("updated: " + ", ".join(stale), file=out)
    else:
        print("gallery up to date", file=out)
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "describe": _cmd_describe,
    "run": _cmd_run,
    "generate": _cmd_generate,
    "matrix": _cmd_matrix,
    "gallery": _cmd_gallery,
}


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
