"""``python -m repro.scenarios`` — list, describe, and run scenarios.

Examples
--------
::

    python -m repro.scenarios list
    python -m repro.scenarios list --markdown --tag frontier
    python -m repro.scenarios describe multi-tenant-inference
    python -m repro.scenarios run quickstart --workers 4
    python -m repro.scenarios run soc5-autonomous --policies all
    python -m repro.scenarios run my-scenario.toml --no-cache
    python -m repro.scenarios run quickstart --pretrained qs-demo
    python -m repro.scenarios gallery --check

``run`` accepts a registered scenario name or a path to a ``.toml`` /
``.json`` scenario file and dispatches one sweep job per policy through
the same runner/cache machinery as ``python -m repro.experiments``; a
rerun with an unchanged configuration is served entirely from the cache.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, TextIO

from repro.errors import ConfigurationError, ReproError
from repro.experiments.common import STANDARD_POLICY_KINDS
from repro.experiments.sweep.backends import BACKEND_NAMES
from repro.experiments.sweep.cache import ResultCache
from repro.experiments.sweep.pool import SweepRunner, autodetect_workers
from repro.scenarios.registry import all_scenarios, get_scenario
from repro.scenarios.scenario import Scenario
from repro.utils.tables import format_table


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.scenarios`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List, describe, and run registered workload scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser("list", help="list registered scenarios")
    list_parser.add_argument(
        "--markdown", action="store_true", help="emit a markdown table"
    )
    list_parser.add_argument("--tag", default=None, help="only scenarios with this tag")
    list_parser.add_argument(
        "--category", default=None, help="only scenarios in this category"
    )

    describe_parser = commands.add_parser(
        "describe", help="show one scenario's materialized configuration"
    )
    describe_parser.add_argument("name", help="scenario name or scenario-file path")
    describe_parser.add_argument(
        "--seed", type=int, default=None, help="materialize with this seed"
    )
    describe_parser.add_argument(
        "--json", action="store_true", dest="as_json", help="emit JSON"
    )

    run_parser = commands.add_parser(
        "run", help="run a scenario's policy comparison through the sweep runner"
    )
    run_parser.add_argument("name", help="scenario name or scenario-file path")
    run_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes (default: one per CPU; 1 = serial)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        metavar="DIR",
        help="on-disk result cache location (default: %(default)s)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    run_parser.add_argument(
        "--backend",
        choices=("auto",) + BACKEND_NAMES,
        default="auto",
        help="execution backend (default: process pool when workers > 1)",
    )
    run_parser.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="sweep manifest location (default: <cache-dir>/manifests)",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip jobs an existing manifest records complete "
        "(digest-verified against the cache)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario's default seed"
    )
    run_parser.add_argument(
        "--training-iterations",
        type=int,
        default=None,
        metavar="N",
        help="override the scenario's training budget",
    )
    run_parser.add_argument(
        "--policies",
        default=None,
        metavar="KINDS",
        help="comma-separated policy kinds, or 'all' for the full standard set",
    )
    run_parser.add_argument(
        "--pretrained",
        default=None,
        metavar="MODEL",
        help="evaluate this trained-policy artifact (a registry name or an "
        "artifact-file path) frozen for the cohmeleon policy instead of "
        "retraining (see python -m repro.models)",
    )
    run_parser.add_argument(
        "--models-dir",
        default=None,
        metavar="DIR",
        help="model registry directory used by --pretrained "
        "(default: $REPRO_MODELS_DIR or .repro-models)",
    )

    gallery_parser = commands.add_parser(
        "gallery", help="regenerate the README/docs scenario gallery"
    )
    gallery_parser.add_argument(
        "--check",
        action="store_true",
        help="verify the generated files are up to date instead of writing",
    )
    gallery_parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repository root (default: autodetected from this file)",
    )
    return parser


def _load_target(name: str) -> Scenario:
    """Resolve a CLI target: a registered name or a scenario-file path."""
    if name.endswith((".toml", ".json")):
        from repro.scenarios.loader import load_scenario_file

        return load_scenario_file(name)
    return get_scenario(name)


def _cmd_list(args: argparse.Namespace, out: TextIO) -> int:
    scenarios = all_scenarios()
    if args.tag:
        scenarios = [s for s in scenarios if args.tag in s.tags]
    if args.category:
        scenarios = [s for s in scenarios if s.category == args.category]
    if args.markdown:
        from repro.scenarios.gallery import gallery_table

        print(gallery_table(scenarios), file=out)
        return 0
    rows = [scenario.summary_row() for scenario in scenarios]
    print(
        format_table(
            ["scenario", "category", "SoC", "tiles", "NoC", "policies", "title"],
            rows,
            title=f"Registered scenarios ({len(rows)})",
        ),
        file=out,
    )
    return 0


def _cmd_describe(args: argparse.Namespace, out: TextIO) -> int:
    scenario = _load_target(args.name)
    description = scenario.describe(seed=args.seed)
    if args.as_json:
        print(json.dumps(description, indent=2, sort_keys=True), file=out)
        return 0
    print(f"{description['name']} — {description['title']}", file=out)
    print(f"category: {description['category']}  tags: {', '.join(description['tags']) or '-'}", file=out)
    if scenario.source:
        print(f"source: {scenario.source}", file=out)
    print(file=out)
    print(description["description"], file=out)
    print(file=out)
    soc = description["soc"]
    print(
        format_table(
            ["parameter", "value"], sorted(soc.items()), title="SoC configuration"
        ),
        file=out,
    )
    print(file=out)
    accelerators = description["accelerators"]
    print(
        format_table(
            ["accelerator", "instances"],
            sorted(accelerators.items()),
            title="Accelerator binding",
        ),
        file=out,
    )
    print(file=out)
    application = description["application"]
    print(
        format_table(
            ["phase", "threads", "invocations", "accelerators"],
            [
                [
                    phase["name"],
                    phase["threads"],
                    phase["invocations"],
                    ", ".join(phase["accelerators"]),
                ]
                for phase in application["phases"]
            ],
            title=f"Test application {application['name']} "
            f"({application['total_invocations']} invocations)",
        ),
        file=out,
    )
    print(file=out)
    print(
        f"policies: {', '.join(description['policies'])}\n"
        f"defaults: seed {description['default_seed']}, "
        f"{description['training_iterations']} training iterations",
        file=out,
    )
    return 0


def _cmd_run(args: argparse.Namespace, out: TextIO) -> int:
    from repro.scenarios.run import run_scenario

    scenario = _load_target(args.name)
    policy_kinds: Optional[List[str]] = None
    if args.policies is not None:
        if args.policies == "all":
            policy_kinds = list(STANDARD_POLICY_KINDS)
        else:
            policy_kinds = [kind for kind in args.policies.split(",") if kind]
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is None and args.resume:
        print("error: --resume needs the result cache; drop --no-cache", file=out)
        return 2
    pretrained = None
    if args.pretrained is not None:
        from repro.models.registry import resolve_pretrained

        pretrained = resolve_pretrained(args.pretrained, models_dir=args.models_dir)
    workers = args.workers if args.workers is not None else autodetect_workers()
    if args.manifest_dir is not None:
        manifest_dir = Path(args.manifest_dir)
    else:
        manifest_dir = None if cache is None else Path(args.cache_dir) / "manifests"
    runner = SweepRunner(
        workers=workers,
        cache=cache,
        backend=None if args.backend == "auto" else args.backend,
        manifest_dir=manifest_dir,
        resume=args.resume,
    )

    started = time.perf_counter()
    result = run_scenario(
        scenario,
        policy_kinds=policy_kinds,
        seed=args.seed,
        training_iterations=args.training_iterations,
        runner=runner,
        pretrained=pretrained,
    )
    elapsed = time.perf_counter() - started

    print(result.report(), file=out)
    cache_note = "disabled" if cache is None else str(cache.cache_dir)
    pretrained_note = (
        "" if pretrained is None else f" pretrained={pretrained.digest[:12]}"
    )
    print(
        f"\n[scenario] name={scenario.name} jobs={len(result.evaluations)} "
        f"executed={result.executed} cache_hits={result.cache_hits} "
        f"resumed={result.resumed} "
        f"workers={workers} workers_used={result.workers_used} "
        f"cache={cache_note}{pretrained_note} elapsed={elapsed:.1f}s",
        file=out,
    )
    return 0


def _cmd_gallery(args: argparse.Namespace, out: TextIO) -> int:
    from repro.scenarios.gallery import sync_gallery

    if args.root is not None:
        root = Path(args.root)
    else:
        root = Path(__file__).resolve().parents[3]
    try:
        stale = sync_gallery(root, check=args.check)
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"cannot sync the scenario gallery under {root}: {exc}"
        ) from exc
    if args.check and stale:
        print(
            "stale generated files: "
            + ", ".join(stale)
            + " (run `python -m repro.scenarios gallery`)",
            file=out,
        )
        return 1
    if stale:
        print("updated: " + ", ".join(stale), file=out)
    else:
        print("gallery up to date", file=out)
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "describe": _cmd_describe,
    "run": _cmd_run,
    "gallery": _cmd_gallery,
}


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
