"""Declarative workload scenarios: a registry of named, runnable workloads.

A :class:`Scenario` bundles an SoC configuration, an accelerator binding,
an application factory (with distinct training/testing instances), the
policy comparison to run, and default seeds.  Scenarios come from three
places, all landing in one registry:

* **builtin modules** (:mod:`repro.scenarios.builtin`) registered with the
  :func:`register_scenario` decorator — the Section 5 case studies, ports
  of the ``examples/`` scripts, the Figure 9 platform grid, and new
  "frontier" workloads beyond the paper;
* **scenario files** (TOML/JSON, see :mod:`repro.scenarios.loader`) so new
  workloads need no code — drop a file in a directory named by
  ``REPRO_SCENARIO_PATH`` or pass its path to the CLI;
* **user code** calling :func:`register` directly;
* **procedural generation** (:mod:`repro.scenarios.generate`): a seeded
  :class:`~repro.scenarios.generate.GenerationSpec` samples SoC
  topologies, workload mixes, and non-stationary traffic into ordinary
  scenario documents — thousands of registry-grade scenarios from one
  declarative spec, each stamped with a content digest.

Running a scenario (:func:`run_scenario`, or ``python -m repro.scenarios
run <name>``) dispatches one sweep job per policy through the
:mod:`repro.experiments.sweep` runner, inheriting its parallelism, its
on-disk result cache, and its fingerprint-derived seeding contract.

Quickstart
----------
>>> from repro.scenarios import get_scenario, scenario_names
>>> "soc5-autonomous" in scenario_names()
True
>>> scenario = get_scenario("soc5-autonomous")
>>> scenario.build_setup().soc_config.name
'SoC5'
"""

from repro.scenarios.generate import (
    GeneratedScenario,
    GenerationSpec,
    generate_scenario,
    generate_scenarios,
    load_generation_spec,
    scenario_digest,
    scenario_from_generated,
)
from repro.scenarios.loader import load_scenario_file, load_scenario_mapping
from repro.scenarios.registry import (
    all_scenarios,
    discover,
    get_scenario,
    register,
    register_scenario,
    scenario_names,
    unregister,
)
from repro.scenarios.run import (
    ScenarioRunResult,
    evaluate_scenario_policy,
    resolve_scenario,
    run_scenario,
    scenario_job_params,
)
from repro.scenarios.scenario import (
    DEFAULT_SCENARIO_POLICIES,
    Scenario,
    TESTING_INSTANCE,
    TRAINING_INSTANCE,
)

__all__ = [
    "DEFAULT_SCENARIO_POLICIES",
    "GeneratedScenario",
    "GenerationSpec",
    "Scenario",
    "ScenarioRunResult",
    "TESTING_INSTANCE",
    "TRAINING_INSTANCE",
    "all_scenarios",
    "discover",
    "evaluate_scenario_policy",
    "generate_scenario",
    "generate_scenarios",
    "get_scenario",
    "load_generation_spec",
    "load_scenario_file",
    "load_scenario_mapping",
    "register",
    "register_scenario",
    "resolve_scenario",
    "run_scenario",
    "scenario_digest",
    "scenario_from_generated",
    "scenario_job_params",
    "scenario_names",
    "unregister",
]
