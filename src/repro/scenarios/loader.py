"""Materialize scenarios from declarative TOML/JSON files.

A scenario file describes a workload with no code at all::

    [scenario]
    name = "my-scenario"
    title = "Two FFTs against a GEMM"
    description = "..."
    policies = ["fixed-non-coh-dma", "cohmeleon"]
    seed = 7
    training_iterations = 2

    [soc]
    preset = "SoC1"            # or an inline definition, see below

    [[accelerators]]
    name = "FFT"
    count = 2

    [[accelerators]]
    name = "GEMM"

    [[application.phases]]
    name = "main"
    [[application.phases.threads]]
    id = "t0"
    chain = ["FFT", "GEMM"]
    footprint = "256 KB"       # bytes, or "<n> KB"/"<n> MB", or size_class
    loops = 2

Instead of a ``preset``, ``[soc]`` may define a platform inline
(``accelerator_tiles``, ``noc_rows``, ``noc_cols``, ``cpus``,
``mem_tiles``, ``llc_partition``, ``l2``; optionally ``acc_l2``,
``tiles_without_cache``), and a preset may be tweaked with a
``[soc.overrides]`` table whose keys are :class:`SoCConfig` field names.
Accelerator entries are either library names or inline traffic-generator
definitions (``[accelerators.traffic]``).  The application is either a
list of explicit phases or a ``[application.generator]`` table driving the
random :class:`~repro.workloads.generator.ApplicationGenerator`.  Threads
may give a concrete ``footprint`` or a ``size_class`` (``"S"``/``"M"``/
``"L"``/``"XL"``) that is resolved against the SoC's cache hierarchy per
instance, which is how file scenarios get distinct training and testing
variants.

Every validation failure raises
:class:`~repro.errors.ConfigurationError` naming the offending key.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.accelerators.descriptor import AccessPattern, AcceleratorDescriptor
from repro.accelerators.library import accelerator_by_name
from repro.accelerators.traffic import TrafficGeneratorConfig
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentSetup
from repro.scenarios.scenario import Scenario
from repro.soc.config import SoCConfig, soc_preset
from repro.units import KB, MB
from repro.utils.rng import SeededRNG
from repro.workloads.generator import ApplicationGenerator, GeneratorConfig
from repro.workloads.sizes import WorkloadSizeClass, footprint_for_class
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on Python <= 3.10
    tomllib = None  # type: ignore[assignment]

_BYTES_PATTERN = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(B|KB|MB|GB)?\s*$", re.IGNORECASE)
_BYTES_UNITS = {"B": 1, "KB": KB, "MB": MB, "GB": 1024 * MB, None: 1}


def parse_bytes(value: object, where: str) -> int:
    """Parse a byte count: an integer, or a string like ``"256 KB"``.

    ``where`` names the key being parsed, for error messages.
    """
    if isinstance(value, bool):
        raise ConfigurationError(f"{where}: expected a byte count, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        match = _BYTES_PATTERN.match(value)
        if match:
            amount = float(match.group(1))
            unit = match.group(2)
            return int(amount * _BYTES_UNITS[unit.upper() if unit else None])
    raise ConfigurationError(
        f"{where}: expected a byte count (int or '<n> KB'/'<n> MB'), got {value!r}"
    )


def _require(mapping: Mapping[str, object], key: str, where: str) -> object:
    if key not in mapping:
        raise ConfigurationError(f"{where}: missing required key {key!r}")
    return mapping[key]


def _as_table(value: object, where: str) -> Mapping[str, object]:
    if not isinstance(value, Mapping):
        raise ConfigurationError(f"{where}: expected a table/object, got {type(value).__name__}")
    return value


def _as_str(value: object, where: str) -> str:
    if not isinstance(value, str) or not value:
        raise ConfigurationError(f"{where}: expected a non-empty string, got {value!r}")
    return value


def _as_int(value: object, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{where}: expected an integer, got {value!r}")
    return value


def _as_str_list(value: object, where: str) -> List[str]:
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ConfigurationError(f"{where}: expected a list of strings, got {value!r}")
    return [_as_str(item, f"{where}[{index}]") for index, item in enumerate(value)]


def _check_unknown_keys(
    mapping: Mapping[str, object], allowed: Sequence[str], where: str
) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown key {unknown[0]!r} (allowed: {sorted(allowed)})"
        )


# ----------------------------------------------------------------------
# [soc]
# ----------------------------------------------------------------------

_SOC_INLINE_KEYS = (
    "name",
    "accelerator_tiles",
    "noc_rows",
    "noc_cols",
    "cpus",
    "mem_tiles",
    "llc_partition",
    "l2",
    "acc_l2",
    "tiles_without_cache",
)


def _parse_soc(table: Mapping[str, object], scenario_name: str) -> SoCConfig:
    """Build the SoC configuration from a ``[soc]`` table."""
    where = "[soc]"
    if "preset" in table:
        _check_unknown_keys(table, ("preset", "overrides"), where)
        preset_name = _as_str(table["preset"], f"{where}.preset")
        try:
            config = soc_preset(preset_name)
        except ConfigurationError as exc:
            raise ConfigurationError(f"{where}.preset: {exc}") from None
        overrides = table.get("overrides")
        if overrides is not None:
            config = _apply_overrides(config, _as_table(overrides, f"{where}.overrides"))
        return config

    _check_unknown_keys(table, _SOC_INLINE_KEYS, where)
    try:
        return SoCConfig(
            name=_as_str(table.get("name", scenario_name), f"{where}.name"),
            num_accelerator_tiles=_as_int(
                _require(table, "accelerator_tiles", where), f"{where}.accelerator_tiles"
            ),
            noc_rows=_as_int(_require(table, "noc_rows", where), f"{where}.noc_rows"),
            noc_cols=_as_int(_require(table, "noc_cols", where), f"{where}.noc_cols"),
            num_cpus=_as_int(_require(table, "cpus", where), f"{where}.cpus"),
            num_mem_tiles=_as_int(_require(table, "mem_tiles", where), f"{where}.mem_tiles"),
            llc_partition_bytes=parse_bytes(
                _require(table, "llc_partition", where), f"{where}.llc_partition"
            ),
            l2_bytes=parse_bytes(_require(table, "l2", where), f"{where}.l2"),
            acc_l2_bytes=(
                parse_bytes(table["acc_l2"], f"{where}.acc_l2")
                if "acc_l2" in table
                else None
            ),
            accelerators_without_cache=tuple(
                _as_int(item, f"{where}.tiles_without_cache[{index}]")
                for index, item in enumerate(table.get("tiles_without_cache", ()))
            ),
        )
    except ConfigurationError as exc:
        if str(exc).startswith(where):
            raise
        raise ConfigurationError(f"{where}: {exc}") from exc


_OVERRIDABLE_FIELDS = {
    f.name for f in dataclasses.fields(SoCConfig) if f.name not in ("timing",)
}
_BYTE_FIELDS = {
    "llc_partition_bytes",
    "l2_bytes",
    "acc_l2_bytes",
    "dram_partition_bytes",
}


def _apply_overrides(config: SoCConfig, overrides: Mapping[str, object]) -> SoCConfig:
    """Apply ``[soc.overrides]`` entries to a preset with field validation."""
    where = "[soc].overrides"
    values: Dict[str, object] = {}
    for key, value in overrides.items():
        if key not in _OVERRIDABLE_FIELDS:
            raise ConfigurationError(
                f"{where}.{key}: not an overridable SoCConfig field "
                f"(allowed: {sorted(_OVERRIDABLE_FIELDS)})"
            )
        if key in _BYTE_FIELDS:
            values[key] = parse_bytes(value, f"{where}.{key}")
        elif key == "accelerators_without_cache":
            values[key] = tuple(
                _as_int(item, f"{where}.{key}[{index}]")
                for index, item in enumerate(
                    value if isinstance(value, Sequence) else [value]
                )
            )
        else:
            values[key] = value
    try:
        return dataclasses.replace(config, **values)  # type: ignore[arg-type]
    except ConfigurationError as exc:
        raise ConfigurationError(f"{where}: {exc}") from exc


# ----------------------------------------------------------------------
# [[accelerators]]
# ----------------------------------------------------------------------

_TRAFFIC_KEYS = {
    "access_pattern",
    "burst_bytes",
    "compute_cycles_per_byte",
    "reuse_factor",
    "read_write_ratio",
    "stride_bytes",
    "access_fraction",
    "in_place",
    "local_mem_bytes",
}


def _parse_accelerators(
    entries: object, scenario_name: str
) -> List[AcceleratorDescriptor]:
    """Build the accelerator list from the ``[[accelerators]]`` array."""
    where = "[[accelerators]]"
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise ConfigurationError(f"{where}: expected an array of tables")
    if not entries:
        raise ConfigurationError(f"{where}: at least one accelerator is required")
    descriptors: List[AcceleratorDescriptor] = []
    for index, entry in enumerate(entries):
        entry_where = f"{where}[{index}]"
        table = _as_table(entry, entry_where)
        _check_unknown_keys(table, ("name", "count", "traffic"), entry_where)
        count = _as_int(table.get("count", 1), f"{entry_where}.count")
        if count < 1:
            raise ConfigurationError(f"{entry_where}.count: must be >= 1, got {count}")
        if "traffic" in table:
            name = _as_str(_require(table, "name", entry_where), f"{entry_where}.name")
            descriptor = _parse_traffic(
                _as_table(table["traffic"], f"{entry_where}.traffic"),
                name,
                f"{entry_where}.traffic",
            )
        else:
            name = _as_str(_require(table, "name", entry_where), f"{entry_where}.name")
            try:
                descriptor = accelerator_by_name(name)
            except ConfigurationError as exc:
                raise ConfigurationError(f"{entry_where}.name: {exc}") from None
        descriptors.extend([descriptor] * count)
    return descriptors


def _parse_traffic(
    table: Mapping[str, object], name: str, where: str
) -> AcceleratorDescriptor:
    """Build a traffic-generator descriptor from an ``accelerators.traffic`` table."""
    _check_unknown_keys(table, sorted(_TRAFFIC_KEYS), where)
    values: Dict[str, object] = dict(table)
    if "access_pattern" in values:
        label = _as_str(values["access_pattern"], f"{where}.access_pattern")
        try:
            values["access_pattern"] = AccessPattern(label)
        except ValueError:
            raise ConfigurationError(
                f"{where}.access_pattern: unknown pattern {label!r} "
                f"(expected one of {[p.value for p in AccessPattern]})"
            ) from None
    for key in ("burst_bytes", "local_mem_bytes"):
        if key in values:
            values[key] = parse_bytes(values[key], f"{where}.{key}")
    try:
        config = TrafficGeneratorConfig(**values)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ConfigurationError(f"{where}: {exc}") from exc
    return config.to_descriptor(name=name)


# ----------------------------------------------------------------------
# [application]
# ----------------------------------------------------------------------

_GENERATOR_KEYS = {f.name for f in dataclasses.fields(GeneratorConfig)}
_SIZE_CLASSES = {cls.value: cls for cls in WorkloadSizeClass}


def _parse_generator(table: Mapping[str, object]) -> GeneratorConfig:
    """Build a :class:`GeneratorConfig` from ``[application.generator]``."""
    where = "[application].generator"
    _check_unknown_keys(table, sorted(_GENERATOR_KEYS), where)
    values: Dict[str, object] = dict(table)
    if "size_classes" in values:
        labels = _as_str_list(values["size_classes"], f"{where}.size_classes")
        classes = []
        for label in labels:
            if label not in _SIZE_CLASSES:
                raise ConfigurationError(
                    f"{where}.size_classes: unknown size class {label!r} "
                    f"(expected one of {sorted(_SIZE_CLASSES)})"
                )
            classes.append(_SIZE_CLASSES[label])
        values["size_classes"] = tuple(classes)
    if "size_weights" in values:
        values["size_weights"] = tuple(values["size_weights"])  # type: ignore[arg-type]
    try:
        return GeneratorConfig(**values)  # type: ignore[arg-type]
    except (TypeError, ConfigurationError) as exc:
        raise ConfigurationError(f"{where}: {exc}") from exc


_THREAD_KEYS = ("id", "chain", "footprint", "size_class", "loops", "cpu")


def _parse_phases(
    entries: object,
) -> List[Tuple[str, List[Dict[str, object]]]]:
    """Parse ``[[application.phases]]`` into a declarative phase plan.

    Footprints stay symbolic (bytes or a size class) until build time, when
    they are resolved against the scenario's SoC configuration.
    """
    where = "[application].phases"
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise ConfigurationError(f"{where}: expected an array of tables")
    if not entries:
        raise ConfigurationError(f"{where}: at least one phase is required")
    phases: List[Tuple[str, List[Dict[str, object]]]] = []
    for phase_index, entry in enumerate(entries):
        phase_where = f"{where}[{phase_index}]"
        table = _as_table(entry, phase_where)
        _check_unknown_keys(table, ("name", "threads"), phase_where)
        phase_name = _as_str(_require(table, "name", phase_where), f"{phase_where}.name")
        raw_threads = _require(table, "threads", phase_where)
        if not isinstance(raw_threads, Sequence) or not raw_threads:
            raise ConfigurationError(
                f"{phase_where}.threads: expected a non-empty array of tables"
            )
        threads: List[Dict[str, object]] = []
        for thread_index, raw in enumerate(raw_threads):
            thread_where = f"{phase_where}.threads[{thread_index}]"
            thread = _as_table(raw, thread_where)
            _check_unknown_keys(thread, _THREAD_KEYS, thread_where)
            parsed: Dict[str, object] = {
                "id": _as_str(
                    thread.get("id", f"{phase_name}-t{thread_index}"),
                    f"{thread_where}.id",
                ),
                "chain": tuple(
                    _as_str_list(_require(thread, "chain", thread_where), f"{thread_where}.chain")
                ),
                "loops": _as_int(thread.get("loops", 1), f"{thread_where}.loops"),
                "cpu": _as_int(thread.get("cpu", thread_index), f"{thread_where}.cpu"),
            }
            if "footprint" in thread and "size_class" in thread:
                raise ConfigurationError(
                    f"{thread_where}: give either 'footprint' or 'size_class', not both"
                )
            if "footprint" in thread:
                parsed["footprint"] = parse_bytes(
                    thread["footprint"], f"{thread_where}.footprint"
                )
            elif "size_class" in thread:
                label = _as_str(thread["size_class"], f"{thread_where}.size_class")
                if label not in _SIZE_CLASSES:
                    raise ConfigurationError(
                        f"{thread_where}.size_class: unknown size class {label!r} "
                        f"(expected one of {sorted(_SIZE_CLASSES)})"
                    )
                parsed["size_class"] = label
            else:
                raise ConfigurationError(
                    f"{thread_where}: missing required key 'footprint' or 'size_class'"
                )
            threads.append(parsed)
        phases.append((phase_name, threads))
    return phases


# ----------------------------------------------------------------------
# Factories built from the parsed document
# ----------------------------------------------------------------------

class _FilePhasesFactory:
    """Application factory for explicit ``[[application.phases]]`` plans."""

    def __init__(self, app_name: str, phases: List[Tuple[str, List[Dict[str, object]]]]):
        self.app_name = app_name
        self.phases = phases

    def __call__(
        self, setup: ExperimentSetup, instance: int, rng: SeededRNG
    ) -> ApplicationSpec:
        """Materialize the phase plan against ``setup``'s SoC configuration."""
        config = setup.soc_config
        built: List[PhaseSpec] = []
        for phase_name, threads in self.phases:
            specs = []
            for thread in threads:
                if "footprint" in thread:
                    footprint = int(thread["footprint"])  # type: ignore[arg-type]
                else:
                    size_class = _SIZE_CLASSES[str(thread["size_class"])]
                    footprint = footprint_for_class(size_class, config, rng=rng)
                specs.append(
                    ThreadSpec(
                        thread_id=str(thread["id"]),
                        accelerator_chain=tuple(thread["chain"]),  # type: ignore[arg-type]
                        footprint_bytes=footprint,
                        loop_count=int(thread["loops"]),  # type: ignore[arg-type]
                        cpu_index=int(thread["cpu"]) % max(config.num_cpus, 1),  # type: ignore[arg-type]
                    )
                )
            built.append(PhaseSpec(name=phase_name, threads=tuple(specs)))
        return ApplicationSpec(
            name=f"{self.app_name}-{instance}",
            phases=tuple(built),
            metadata={"instance": instance},
        )


class _FileGeneratorFactory:
    """Application factory for ``[application.generator]`` plans."""

    def __init__(self, app_name: str, generator_config: GeneratorConfig):
        self.app_name = app_name
        self.generator_config = generator_config

    def __call__(
        self, setup: ExperimentSetup, instance: int, rng: SeededRNG
    ) -> ApplicationSpec:
        """Generate instance ``instance`` of the random application."""
        generator = ApplicationGenerator(
            soc_config=setup.soc_config,
            accelerator_names=[d.name for d in setup.accelerators],
            generator_config=self.generator_config,
            seed=setup.seed,
        )
        return generator.generate(instance=instance, name=f"{self.app_name}-{instance}")


class _ConstFactory:
    """Factory returning a copy of a pre-built value, ignoring arguments.

    Serves as both the config factory (called with no arguments) and the
    accelerator factory (called with ``(config, rng)``) of file scenarios.
    """

    def __init__(self, value):
        self.value = value

    def __call__(self, *args, **kwargs):
        """Return the stored value (copied when it is a list)."""
        return list(self.value) if isinstance(self.value, list) else self.value


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------

_SCENARIO_KEYS = (
    "name",
    "title",
    "description",
    "category",
    "tags",
    "policies",
    "seed",
    "training_iterations",
    "line_bytes",
)


def load_scenario_mapping(
    document: Mapping[str, object], source: Optional[str] = None
) -> Scenario:
    """Build a :class:`Scenario` from a parsed TOML/JSON document.

    ``source`` is recorded on the scenario so sweep jobs running in worker
    processes can re-load it without relying on registry state.
    """
    where = "scenario file" if source is None else f"scenario file {source}"
    _check_unknown_keys(document, ("scenario", "soc", "accelerators", "application"), where)
    meta = _as_table(_require(document, "scenario", where), "[scenario]")
    _check_unknown_keys(meta, _SCENARIO_KEYS, "[scenario]")
    name = _as_str(_require(meta, "name", "[scenario]"), "[scenario].name")

    config = _parse_soc(
        _as_table(_require(document, "soc", where), "[soc]"), scenario_name=name
    )
    descriptors = _parse_accelerators(_require(document, "accelerators", where), name)

    app_table = _as_table(_require(document, "application", where), "[application]")
    _check_unknown_keys(app_table, ("generator", "phases"), "[application]")
    if ("generator" in app_table) == ("phases" in app_table):
        raise ConfigurationError(
            "[application]: give exactly one of 'generator' or 'phases'"
        )
    if "generator" in app_table:
        application_factory = _FileGeneratorFactory(
            name, _parse_generator(_as_table(app_table["generator"], "[application].generator"))
        )
    else:
        application_factory = _FilePhasesFactory(name, _parse_phases(app_table["phases"]))

    policies = meta.get("policies")
    line_bytes = meta.get("line_bytes")
    return Scenario(
        name=name,
        title=_as_str(meta.get("title", name), "[scenario].title"),
        description=_as_str(meta.get("description", name), "[scenario].description"),
        category=_as_str(meta.get("category", "file"), "[scenario].category"),
        tags=tuple(_as_str_list(meta.get("tags", []), "[scenario].tags")),
        config_factory=_ConstFactory(config),
        accelerator_factory=_ConstFactory(descriptors),
        application_factory=application_factory,
        policy_kinds=(
            tuple(_as_str_list(policies, "[scenario].policies"))
            if policies is not None
            else Scenario.__dataclass_fields__["policy_kinds"].default
        ),
        default_seed=_as_int(meta.get("seed", 0), "[scenario].seed"),
        training_iterations=_as_int(
            meta.get("training_iterations", 3), "[scenario].training_iterations"
        ),
        line_bytes=(
            parse_bytes(line_bytes, "[scenario].line_bytes")
            if line_bytes is not None
            else None
        ),
        source=source,
    )


def load_scenario_file(path: Union[str, Path]) -> Scenario:
    """Load one scenario from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario file {path}: {exc}") from exc
    if path.suffix == ".toml":
        if tomllib is None:
            raise ConfigurationError(
                f"scenario file {path}: TOML support requires Python >= 3.11; "
                "use a .json scenario file instead"
            )
        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ConfigurationError(f"scenario file {path}: invalid TOML: {exc}") from exc
    elif path.suffix == ".json":
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ConfigurationError(f"scenario file {path}: invalid JSON: {exc}") from exc
    else:
        raise ConfigurationError(
            f"scenario file {path}: unsupported extension {path.suffix!r} "
            "(expected .toml or .json)"
        )
    if not isinstance(document, Mapping):
        raise ConfigurationError(
            f"scenario file {path}: top level must be a table/object"
        )
    try:
        return load_scenario_mapping(document, source=str(path))
    except ConfigurationError as exc:
        message = str(exc)
        if str(path) in message:
            raise
        raise ConfigurationError(f"scenario file {path}: {message}") from None
