"""The :class:`Scenario` object: a named, declarative, runnable workload.

A scenario bundles everything needed to evaluate coherence policies on one
workload: a :class:`~repro.soc.config.SoCConfig` (via a factory, so presets
and custom configurations are treated uniformly), an accelerator binding, an
application factory that produces training/testing instances, the policy
kinds to compare, and default seeds.  Scenarios are registered by name in
:mod:`repro.scenarios.registry`, materialized from TOML/JSON files by
:mod:`repro.scenarios.loader`, and executed through the sweep runner by
:mod:`repro.scenarios.run`.

The factory signatures form the scenario contract:

* ``config_factory() -> SoCConfig`` — the platform, built fresh per call;
* ``accelerator_factory(config, rng) -> [AcceleratorDescriptor]`` — the
  accelerators to bind, derived only from the config and the passed RNG;
* ``application_factory(setup, instance, rng) -> ApplicationSpec`` — one
  application instance (``instance=0`` trains, ``instance=1`` tests),
  derived only from the setup, the instance index, and the passed RNG.

Because every factory is a pure function of its arguments and all
randomness flows through explicitly passed :class:`~repro.utils.rng.SeededRNG`
streams, a scenario evaluated twice with the same seed produces
bit-identical results — the same discipline the sweep subsystem enforces
(see the "Determinism" page of the docs site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.errors import ConfigurationError
from repro.experiments.common import (
    EXPERIMENT_LINE_BYTES,
    STANDARD_POLICY_KINDS,
    ExperimentSetup,
)
from repro.soc.config import SoCConfig
from repro.utils.rng import SeededRNG
from repro.workloads.spec import ApplicationSpec

#: Signature of a scenario's SoC-configuration factory.
ConfigFactory = Callable[[], SoCConfig]
#: Signature of a scenario's accelerator-binding factory.
AcceleratorFactory = Callable[[SoCConfig, SeededRNG], Sequence[AcceleratorDescriptor]]
#: Signature of a scenario's application factory.
ApplicationFactory = Callable[[ExperimentSetup, int, SeededRNG], ApplicationSpec]

#: The default policy comparison of a scenario: the reference fixed policy,
#: its strongest fixed competitor, the manual heuristic, and Cohmeleon.
#: (``fixed-hetero`` is excluded by default because it requires a profiling
#: pre-pass; scenarios that want it opt in via ``policy_kinds``.)
DEFAULT_SCENARIO_POLICIES: Tuple[str, ...] = (
    "fixed-non-coh-dma",
    "fixed-coh-dma",
    "manual",
    "cohmeleon",
)

#: Application instance indices used for training and testing, following the
#: paper's methodology of learning on one randomly configured instance and
#: evaluating on a different one.
TRAINING_INSTANCE = 0
TESTING_INSTANCE = 1


@dataclass
class Scenario:
    """A named, declarative workload scenario.

    Scenarios are the unit the ``python -m repro.scenarios`` CLI lists,
    describes, and runs; see the module docstring for the factory contract.
    """

    #: Registry key (kebab-case, unique).
    name: str
    #: One-line human-readable title (shown by ``list``).
    title: str
    #: Longer prose description (shown by ``describe`` and the docs gallery).
    description: str
    #: Factory producing the scenario's SoC configuration.
    config_factory: ConfigFactory
    #: Factory producing the accelerators to bind to the SoC's tiles.
    accelerator_factory: AcceleratorFactory
    #: Factory producing application instances (0 trains, 1 tests).
    application_factory: ApplicationFactory
    #: Grouping used by the CLI and the docs gallery
    #: (``case-study`` / ``example`` / ``paper-grid`` / ``frontier`` / ``file``).
    category: str = "custom"
    #: Free-form labels for filtering (``list --tag``).
    tags: Tuple[str, ...] = ()
    #: Policy kinds compared when the scenario runs (in figure order).
    policy_kinds: Tuple[str, ...] = DEFAULT_SCENARIO_POLICIES
    #: Seed every derived RNG stream starts from.
    default_seed: int = 0
    #: Online-training iterations for learning policies.
    training_iterations: int = 3
    #: Cache-model granularity (coarser blocks cut simulation cost without
    #: changing relative results); ``None`` keeps the config's own line size.
    line_bytes: Optional[int] = EXPERIMENT_LINE_BYTES
    #: Path of the TOML/JSON file this scenario was loaded from, if any.
    source: Optional[str] = None
    #: Extra metadata (free-form, surfaced by ``describe``).
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if any(ch.isspace() for ch in self.name):
            raise ConfigurationError(
                f"scenario name {self.name!r} must not contain whitespace"
            )
        if self.training_iterations < 0:
            raise ConfigurationError(
                f"scenario {self.name}: training_iterations must be >= 0"
            )
        if not self.policy_kinds:
            raise ConfigurationError(f"scenario {self.name}: no policy kinds")
        unknown = [k for k in self.policy_kinds if k not in STANDARD_POLICY_KINDS]
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name}: unknown policy kinds {unknown}; "
                f"expected a subset of {list(STANDARD_POLICY_KINDS)}"
            )

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def build_config(self) -> SoCConfig:
        """Build the scenario's SoC configuration (line size applied)."""
        config = self.config_factory()
        if self.line_bytes is not None and config.cache_line_bytes != self.line_bytes:
            config = config.with_line_size(self.line_bytes)
        return config

    def build_setup(self, seed: Optional[int] = None) -> ExperimentSetup:
        """Materialize the scenario as an :class:`ExperimentSetup`.

        Parameters
        ----------
        seed:
            Root seed for the accelerator-binding RNG stream; defaults to
            the scenario's ``default_seed``.
        """
        seed = self.default_seed if seed is None else seed
        config = self.build_config()
        rng = SeededRNG(seed).spawn("scenario-accelerators", self.name)
        accelerators = list(self.accelerator_factory(config, rng))
        return ExperimentSetup(
            name=self.name, soc_config=config, accelerators=accelerators, seed=seed
        )

    def build_application(
        self, setup: ExperimentSetup, instance: int, seed: Optional[int] = None
    ) -> ApplicationSpec:
        """Build one application instance for ``setup``.

        ``instance`` selects the variant (:data:`TRAINING_INSTANCE` or
        :data:`TESTING_INSTANCE`, or any other index for additional
        instances); the RNG stream passed to the factory depends on the
        seed, the scenario name, and the instance only.
        """
        seed = self.default_seed if seed is None else seed
        rng = SeededRNG(seed).spawn("scenario-application", self.name, instance)
        return self.application_factory(setup, instance, rng)

    def applications(
        self, setup: ExperimentSetup, seed: Optional[int] = None
    ) -> Tuple[ApplicationSpec, ApplicationSpec]:
        """Build the (training, testing) application pair for ``setup``."""
        return (
            self.build_application(setup, TRAINING_INSTANCE, seed=seed),
            self.build_application(setup, TESTING_INSTANCE, seed=seed),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self, seed: Optional[int] = None) -> Dict[str, object]:
        """Summarize the materialized scenario (no simulation involved).

        Returns a JSON-able mapping with the SoC shape, the bound
        accelerators, the testing application's phase structure, and the
        run defaults — what ``python -m repro.scenarios describe`` prints.
        """
        setup = self.build_setup(seed=seed)
        test_app = self.build_application(setup, TESTING_INSTANCE, seed=seed)
        accelerator_counts: Dict[str, int] = {}
        for descriptor in setup.accelerators:
            accelerator_counts[descriptor.name] = (
                accelerator_counts.get(descriptor.name, 0) + 1
            )
        return {
            "name": self.name,
            "title": self.title,
            "category": self.category,
            "tags": list(self.tags),
            "description": self.description,
            "soc": setup.soc_config.describe(),
            "accelerators": accelerator_counts,
            "application": {
                "name": test_app.name,
                "phases": [
                    {
                        "name": phase.name,
                        "threads": len(phase.threads),
                        "invocations": phase.total_invocations,
                        "accelerators": phase.accelerators_used(),
                    }
                    for phase in test_app.phases
                ],
                "total_invocations": test_app.total_invocations,
            },
            "policies": list(self.policy_kinds),
            "default_seed": self.default_seed,
            "training_iterations": self.training_iterations,
            "source": self.source,
        }

    def summary_row(self) -> List[object]:
        """The scenario's row for the ``list`` table (cheap: no app build)."""
        config = self.build_config()
        return [
            self.name,
            self.category,
            config.name,
            config.num_accelerator_tiles,
            f"{config.noc_rows}x{config.noc_cols}",
            len(self.policy_kinds),
            self.title,
        ]
