"""The scenario registry: registration, lookup, and discovery.

Scenarios register either eagerly (``register(scenario)``) or through the
:func:`register_scenario` decorator on a zero-argument factory function::

    @register_scenario
    def my_scenario() -> Scenario:
        return Scenario(name="my-scenario", ...)

The decorator calls the factory once at import time and stores the
resulting :class:`~repro.scenarios.scenario.Scenario` under its name, so
importing a module is all it takes to publish its scenarios — the same
entry-point-style discipline ``setuptools`` entry points use, without
requiring package metadata.

:func:`discover` makes the registry self-populating: it imports the
builtin scenario modules (:mod:`repro.scenarios.builtin`) and then loads
every ``*.toml`` / ``*.json`` scenario file found in the directories named
by the ``REPRO_SCENARIO_PATH`` environment variable (``os.pathsep``
separated), so new workloads need no code at all.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.scenario import Scenario

#: Environment variable naming extra scenario-file directories.
SCENARIO_PATH_ENV = "REPRO_SCENARIO_PATH"

_REGISTRY: Dict[str, Scenario] = {}
_DISCOVERED = False


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Register ``scenario`` under its name; return it for chaining.

    Raises :class:`ConfigurationError` when the name is already taken,
    unless ``replace`` is set (used by tests and by re-loading scenario
    files).
    """
    if not replace and scenario.name in _REGISTRY:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered; "
            "pass replace=True to overwrite"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def register_scenario(factory: Callable[[], Scenario]) -> Callable[[], Scenario]:
    """Decorator: call ``factory`` once and register the scenario it returns.

    The decorated function is returned unchanged, so it can still be called
    directly (e.g. by tests that want a fresh instance).
    """
    register(factory())
    return factory


def unregister(name: str) -> None:
    """Remove one scenario from the registry (primarily for tests)."""
    _REGISTRY.pop(name, None)


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------

def discover(extra_dirs: Optional[Sequence[str]] = None, force: bool = False) -> None:
    """Populate the registry: builtin modules plus scenario-file directories.

    Importing :mod:`repro.scenarios.builtin` registers every builtin
    scenario via the decorator; afterwards every ``*.toml`` / ``*.json``
    file in ``extra_dirs`` and in the ``REPRO_SCENARIO_PATH`` directories
    is loaded.  Discovery runs once per process unless ``force`` is set;
    file scenarios replace same-named earlier registrations so a re-run
    picks up edits.
    """
    global _DISCOVERED
    if _DISCOVERED and not force and not extra_dirs:
        return
    import repro.scenarios.builtin  # noqa: F401  (import side effect registers)

    directories: List[str] = list(extra_dirs or [])
    env_path = os.environ.get(SCENARIO_PATH_ENV, "")
    directories.extend(entry for entry in env_path.split(os.pathsep) if entry)
    for directory in directories:
        _load_directory(directory)
    _DISCOVERED = True


def _load_directory(directory: str) -> None:
    """Load every scenario file in ``directory`` (sorted, for determinism)."""
    from repro.scenarios.loader import load_scenario_file

    if not os.path.isdir(directory):
        raise ConfigurationError(
            f"scenario path entry {directory!r} is not a directory"
        )
    names = sorted(
        entry
        for entry in os.listdir(directory)
        if entry.endswith((".toml", ".json"))
    )
    for entry in names:
        register(load_scenario_file(os.path.join(directory, entry)), replace=True)


# ----------------------------------------------------------------------
# Lookup
# ----------------------------------------------------------------------

def scenario_names() -> List[str]:
    """Sorted names of every registered scenario (after discovery)."""
    discover()
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, sorted by (category, name)."""
    discover()
    return sorted(_REGISTRY.values(), key=lambda s: (s.category, s.name))


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name.

    Raises :class:`ConfigurationError` with the available names on a miss.
    """
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
