"""Execute scenarios through the sweep runner (one job per policy).

:func:`run_scenario` turns a scenario into a
:class:`~repro.experiments.sweep.SweepSpec` with one job per policy kind
and dispatches it through :func:`~repro.experiments.sweep.run_spec`, so
scenario runs inherit everything the sweep subsystem provides: parallel
workers, the on-disk result cache, and the fingerprint-derived seeding
contract.  Job parameters are primitives only (scenario name or file path,
policy kind, seed, iteration count), so fingerprints are stable across
processes and cache hits survive interpreter restarts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.common import (
    REFERENCE_POLICY,
    PolicyEvaluation,
    evaluate_one_policy,
    make_standard_policies,
)
from repro.experiments.sweep import Job, SweepRunner, SweepSpec, run_spec
from repro.experiments.sweep.sweep import canonicalize
from repro.scenarios.scenario import Scenario
from repro.utils.stats import geometric_mean
from repro.utils.tables import format_table


def resolve_scenario(
    name: str,
    source: Optional[str] = None,
    generated: Optional[Dict[str, object]] = None,
) -> Scenario:
    """Find the scenario a sweep job refers to.

    File-based scenarios are re-loaded from their source path and
    procedurally generated scenarios are re-generated from their
    ``generated`` parameters (the spec mapping plus index stamped into
    scenario metadata by :mod:`repro.scenarios.generate`), so worker
    processes never depend on the parent's registry state; registered
    scenarios are looked up by name after discovery.  Also used by the
    :mod:`repro.models` training jobs, which resolve scenarios the same
    way inside worker processes.
    """
    if generated is not None:
        from repro.scenarios.generate import scenario_from_generated

        scenario = scenario_from_generated(generated)
        if scenario.name != name:
            raise ConfigurationError(
                f"generated-scenario parameters produce {scenario.name!r}, "
                f"expected {name!r}"
            )
        return scenario
    if source is not None:
        from repro.scenarios.loader import load_scenario_file

        scenario = load_scenario_file(source)
        if scenario.name != name:
            raise ConfigurationError(
                f"scenario file {source} defines {scenario.name!r}, expected {name!r}"
            )
        return scenario
    from repro.scenarios.registry import get_scenario

    return get_scenario(name)


def scenario_definition_digest(scenario: Scenario, seed: Optional[int] = None) -> str:
    """Content digest of what the scenario materializes at ``seed``.

    Covers the SoC configuration, the accelerator binding, and the
    training/testing application pair — everything (besides the policy and
    the training budget, which are separate job parameters) that
    determines a scenario evaluation's result.  Embedding this digest in
    the sweep-job parameters makes job fingerprints sensitive to scenario
    *content*: editing a scenario file or a builtin definition misses the
    cache instead of silently reusing a stale payload.
    """
    setup = scenario.build_setup(seed=seed)
    training_app, test_app = scenario.applications(setup, seed=seed)
    document = canonicalize(
        {
            "config": setup.soc_config,
            "accelerators": list(setup.accelerators),
            "training_app": training_app,
            "test_app": test_app,
        }
    )
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def evaluate_scenario_policy(
    scenario: Scenario,
    policy_kind: str,
    seed: Optional[int] = None,
    training_iterations: Optional[int] = None,
    pretrained: Optional[object] = None,
    max_events: Optional[int] = None,
) -> PolicyEvaluation:
    """Evaluate one policy kind on ``scenario`` in the current process.

    Builds the setup and the (training, testing) application pair, trains
    learning policies for ``training_iterations`` runs, and evaluates on
    the testing instance.  The profiled ``fixed-hetero`` baseline runs its
    isolation profiling pass first, exactly as the figure harnesses do.

    With ``pretrained`` (a :class:`repro.models.PolicyArtifact`) and
    ``policy_kind='cohmeleon'``, online training is skipped entirely: the
    artifact's frozen policy — Q-table, hyper-parameters, and the exact
    RNG position it froze with — is evaluated as-is on the testing
    instance (the warm-start contract; see ``docs/models.md``).

    ``max_events`` bounds every simulated phase's event budget — the
    per-request bound of the :mod:`repro.serving` what-if path; exceeding
    it raises :class:`~repro.errors.SimulationError`.
    """
    seed = scenario.default_seed if seed is None else seed
    iterations = (
        scenario.training_iterations if training_iterations is None else training_iterations
    )
    setup = scenario.build_setup(seed=seed)
    training_app, test_app = scenario.applications(setup, seed=seed)
    if pretrained is not None:
        if policy_kind != "cohmeleon":
            raise ConfigurationError(
                f"pretrained artifacts apply to the 'cohmeleon' policy, not {policy_kind!r}"
            )
        policy = pretrained.build_policy()  # type: ignore[attr-defined]
        return evaluate_one_policy(
            setup=setup,
            policy=policy,
            test_app=test_app,
            training_app=None,
            training_iterations=0,
            policy_name=policy_kind,
            max_events=max_events,
        )
    hetero = None
    if policy_kind == "fixed-hetero":
        from repro.experiments.isolation import fixed_hetero_modes

        hetero = fixed_hetero_modes(setup)
    policies = make_standard_policies([policy_kind], seed, fixed_hetero_modes=hetero)
    return evaluate_one_policy(
        setup=setup,
        policy=policies[policy_kind],
        test_app=test_app,
        training_app=training_app,
        training_iterations=iterations,
        policy_name=policy_kind,
        max_events=max_events,
    )


def _scenario_policy_job(params: Dict[str, object], rng) -> Dict[str, object]:
    """Sweep job: one (scenario, policy) evaluation (see :func:`run_scenario`).

    When the job carries ``pretrained``/``pretrained_digest`` parameters,
    the artifact is re-loaded from its path inside the worker and
    digest-verified against the fingerprinted digest before use — the
    digest gate holds even when the file changed between scheduling and
    execution.
    """
    scenario = resolve_scenario(
        str(params["scenario"]),
        params.get("source"),  # type: ignore[arg-type]
        params.get("generated"),  # type: ignore[arg-type]
    )
    pretrained = None
    if params.get("_pretrained_path") is not None:
        from repro.models.artifact import load_artifact

        pretrained = load_artifact(
            str(params["_pretrained_path"]),
            expected_digest=str(params["pretrained_digest"]),
        )
    max_events = params.get("max_events")
    evaluation = evaluate_scenario_policy(
        scenario,
        policy_kind=str(params["policy_kind"]),
        seed=int(params["seed"]),  # type: ignore[arg-type]
        training_iterations=int(params["training_iterations"]),  # type: ignore[arg-type]
        pretrained=pretrained,
        max_events=None if max_events is None else int(max_events),  # type: ignore[arg-type]
    )
    return evaluation.to_dict()


def scenario_job_params(
    scenario: Scenario,
    policy_kind: str,
    seed: int,
    training_iterations: int,
    definition: Optional[str] = None,
    pretrained: Optional[object] = None,
    max_events: Optional[int] = None,
) -> Dict[str, object]:
    """Build the parameter mapping for one (scenario, policy) sweep job.

    This is the single definition of the job-parameter schema
    :func:`_scenario_policy_job` consumes — :func:`run_scenario` and the
    transfer-matrix builder (:func:`repro.models.transfer_matrix`) both
    construct jobs through it so their fingerprints agree and cache
    entries are shared.  Parameters are primitives only; procedurally
    generated scenarios contribute their ``generated`` metadata (spec
    mapping + index) so worker processes can regenerate them without a
    registry or a file on disk.
    """
    if definition is None:
        definition = scenario_definition_digest(scenario, seed=seed)
    params: Dict[str, object] = {
        "scenario": scenario.name,
        "source": scenario.source,
        "definition": definition,
        "policy_kind": policy_kind,
        "seed": seed,
        "training_iterations": training_iterations,
    }
    if scenario.source is None and "generated" in scenario.metadata:
        params["generated"] = scenario.metadata["generated"]
    if max_events is not None:
        # A bounded run simulates different work than an unbounded one, so
        # the budget joins the fingerprint.  It is only added when set,
        # keeping every pre-existing (unbounded) fingerprint — and its
        # cache entries — byte-identical.
        params["max_events"] = int(max_events)
    if pretrained is not None and policy_kind == "cohmeleon":
        # The artifact digest joins the fingerprint (cache correctness:
        # two different tables can never share a payload) and training
        # is pinned to zero so the same frozen evaluation fingerprints
        # identically regardless of the surrounding training budget.
        # The load path is transport-only (underscore prefix): the
        # digest alone is the artifact's identity, so renaming or
        # relocating the registry never misses the cache.
        params.update(
            {
                "training_iterations": 0,
                "pretrained_digest": pretrained.digest,  # type: ignore[attr-defined]
                "_pretrained_path": str(pretrained.source),  # type: ignore[attr-defined]
            }
        )
    return params


@dataclass
class ScenarioRunResult:
    """Outcome of one scenario run across its policy comparison."""

    scenario_name: str
    seed: int
    #: Per-policy evaluations, in policy order.
    evaluations: Dict[str, PolicyEvaluation]
    #: Jobs served from the result cache vs. actually executed.
    cache_hits: int = 0
    executed: int = 0
    #: Jobs skipped via a resumed sweep manifest (digest-verified).
    resumed: int = 0
    workers_used: int = 1
    #: Policy the normalized columns are relative to.
    reference_policy: str = REFERENCE_POLICY
    #: Digest of the pretrained artifact the cohmeleon job evaluated, if any.
    pretrained_digest: Optional[str] = None

    def normalized(self) -> Dict[str, Dict[str, float]]:
        """Per policy, geomean execution time and off-chip accesses normalized
        to the reference policy (1.0 = parity; absent reference -> raw sums).
        """
        reference = self.evaluations.get(self.reference_policy)
        table: Dict[str, Dict[str, float]] = {}
        for name, evaluation in self.evaluations.items():
            if reference is None:
                table[name] = {
                    "exec": evaluation.result.total_execution_cycles,
                    "mem": float(evaluation.result.total_ddr_accesses),
                }
                continue
            table[name] = {
                "exec": _geomean_ratio(
                    evaluation.per_phase_exec, reference.per_phase_exec
                ),
                "mem": _geomean_ratio(evaluation.per_phase_ddr, reference.per_phase_ddr),
            }
        return table

    def report(self) -> str:
        """Render the run as the standard policy-comparison table."""
        normalized = self.normalized()
        rows: List[List[object]] = []
        for name, evaluation in self.evaluations.items():
            entry = normalized[name]
            rows.append(
                [
                    name,
                    f"{evaluation.result.total_execution_cycles:,.0f}",
                    f"{entry['exec']:.3f}",
                    evaluation.result.total_ddr_accesses,
                    f"{entry['mem']:.3f}",
                ]
            )
        pretrained_note = (
            f", pretrained {self.pretrained_digest[:12]}"
            if self.pretrained_digest
            else ""
        )
        return format_table(
            [
                "policy",
                "execution cycles",
                "norm exec",
                "off-chip accesses",
                "norm mem",
            ],
            rows,
            title=f"Scenario {self.scenario_name} (seed {self.seed}, "
            f"normalized to {self.reference_policy}{pretrained_note})",
        )


def _geomean_ratio(values: Dict[str, float], reference: Dict[str, float]) -> float:
    """Geometric mean of per-phase ratios against a reference (socs.py idiom)."""
    ratios = []
    for phase_name, reference_value in reference.items():
        value = values.get(phase_name, 0.0)
        if reference_value > 0:
            ratios.append(value / reference_value)
        elif value == 0:
            ratios.append(1.0)
    return geometric_mean(ratios) if ratios else 0.0


def run_scenario(
    scenario: Scenario,
    policy_kinds: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    training_iterations: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
    pretrained: Optional[object] = None,
    max_events: Optional[int] = None,
) -> ScenarioRunResult:
    """Run ``scenario``'s policy comparison through the sweep runner.

    Parameters
    ----------
    scenario:
        The scenario to run (from the registry or a loaded file).
    policy_kinds:
        Policies to compare; defaults to the scenario's ``policy_kinds``.
    seed:
        Root seed; defaults to the scenario's ``default_seed``.
    training_iterations:
        Online-training budget for learning policies; defaults to the
        scenario's ``training_iterations``.
    runner:
        A configured :class:`SweepRunner` (workers + cache); ``None`` runs
        serially without a cache.
    pretrained:
        A saved :class:`repro.models.PolicyArtifact`: the ``cohmeleon``
        job evaluates this frozen pretrained table instead of retraining.
        The artifact must have been saved to disk (workers re-load it from
        its path) and its digest becomes part of the job fingerprint, so
        the result cache distinguishes every table evaluated.
    max_events:
        Per-phase event budget for every job (``None`` = unbounded); a
        bounded run fingerprints differently from an unbounded one.

    Returns
    -------
    ScenarioRunResult
        Per-policy evaluations plus cache/executed statistics from the
        sweep, with helpers to normalize and render the comparison.
    """
    kinds = tuple(policy_kinds if policy_kinds is not None else scenario.policy_kinds)
    if not kinds:
        raise ConfigurationError(f"scenario {scenario.name}: no policies to run")
    if pretrained is not None:
        if "cohmeleon" not in kinds:
            raise ConfigurationError(
                f"scenario {scenario.name}: a pretrained artifact was given but "
                "'cohmeleon' is not among the policies to run"
            )
        if getattr(pretrained, "source", None) is None:
            raise ConfigurationError(
                "the pretrained artifact has no on-disk source; save it to a "
                "registry first so sweep workers can re-load it"
            )
    run_seed = scenario.default_seed if seed is None else seed
    iterations = (
        scenario.training_iterations if training_iterations is None else training_iterations
    )
    # The digest ties the fingerprint to the materialized content, so a
    # cached payload can never outlive an edit to the scenario definition.
    definition = scenario_definition_digest(scenario, seed=run_seed)
    jobs = []
    for kind in kinds:
        params = scenario_job_params(
            scenario,
            policy_kind=kind,
            seed=run_seed,
            training_iterations=iterations,
            definition=definition,
            pretrained=pretrained,
            max_events=max_events,
        )
        jobs.append(Job(key=kind, fn=_scenario_policy_job, params=params, seed=run_seed))
    spec = SweepSpec(name=f"scenario-{scenario.name}", jobs=jobs)
    outcome = run_spec(spec, runner)
    evaluations = {
        kind: PolicyEvaluation.from_dict(outcome[kind]) for kind in kinds
    }
    reference = REFERENCE_POLICY if REFERENCE_POLICY in evaluations else kinds[0]
    return ScenarioRunResult(
        scenario_name=scenario.name,
        seed=run_seed,
        evaluations=evaluations,
        cache_hits=outcome.cache_hits,
        executed=outcome.executed,
        resumed=outcome.resumed,
        workers_used=outcome.workers_used,
        reference_policy=reference,
        pretrained_digest=None if pretrained is None else pretrained.digest,  # type: ignore[attr-defined]
    )
