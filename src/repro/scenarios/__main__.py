"""``python -m repro.scenarios`` — the scenario registry CLI."""

import sys

from repro.scenarios.cli import main

if __name__ == "__main__":
    sys.exit(main())
