"""Paper-grid scenarios: the Figure 9 traffic-generator platforms.

These port the figure harnesses' setup grids onto the registry: SoC0
restricted to streaming generators, SoC0 restricted to irregular
generators, and SoC1-SoC3 with mixed generator sets, each paired with a
randomly generated (but seed-deterministic) multi-phase application, as in
:mod:`repro.experiments.socs`.
"""

from __future__ import annotations

import functools
from typing import List, Optional

from repro.accelerators.descriptor import AccessPattern, AcceleratorDescriptor
from repro.accelerators.traffic import TrafficGeneratorFactory
from repro.experiments.common import ExperimentSetup
from repro.scenarios.registry import register_scenario
from repro.scenarios.scenario import Scenario
from repro.soc.config import SoCConfig, soc_preset
from repro.utils.rng import SeededRNG
from repro.workloads.generator import ApplicationGenerator, GeneratorConfig
from repro.workloads.spec import ApplicationSpec

#: Policy comparison used by the paper-grid scenarios (the Figure 9 set
#: minus the profiled fixed-heterogeneous baseline, which needs an
#: expensive profiling pre-pass; add it back with ``run --policies``).
PAPER_GRID_POLICIES = (
    "fixed-non-coh-dma",
    "fixed-llc-coh-dma",
    "fixed-coh-dma",
    "fixed-full-coh",
    "rand",
    "manual",
    "cohmeleon",
)


def _preset_config(name: str) -> SoCConfig:
    """Table 4 preset for one paper-grid scenario."""
    return soc_preset(name)


def _traffic_binding(
    pattern: Optional[AccessPattern], config: SoCConfig, rng: SeededRNG
) -> List[AcceleratorDescriptor]:
    """Traffic generators filling the SoC's tiles.

    With a ``pattern`` every generator uses it (the SoC0 streaming and
    irregular configurations); otherwise the set mixes all three access
    patterns, as the SoC1-SoC3 platforms do.
    """
    factory = TrafficGeneratorFactory(rng)
    if pattern is None:
        return factory.build_mixed_set(config.num_accelerator_tiles)
    return factory.build_set(config.num_accelerator_tiles, pattern)


def _generated_app(
    setup: ExperimentSetup, instance: int, rng: SeededRNG
) -> ApplicationSpec:
    """A randomly configured evaluation application (seed-deterministic)."""
    generator = ApplicationGenerator(
        soc_config=setup.soc_config,
        accelerator_names=[descriptor.name for descriptor in setup.accelerators],
        generator_config=GeneratorConfig(num_phases=3, min_threads=2, max_threads=6),
        seed=setup.seed + 41,
    )
    return generator.generate(instance=instance)


def _paper_grid_scenario(
    name: str,
    preset: str,
    pattern: Optional[AccessPattern],
    title: str,
    description: str,
) -> Scenario:
    """Build one paper-grid scenario around a preset and a traffic pattern."""
    return Scenario(
        name=name,
        title=title,
        description=description,
        category="paper-grid",
        tags=("paper", "figure-9", preset.lower()),
        config_factory=functools.partial(_preset_config, preset),
        accelerator_factory=functools.partial(_traffic_binding, pattern),
        application_factory=_generated_app,
        policy_kinds=PAPER_GRID_POLICIES,
        training_iterations=3,
    )


@register_scenario
def soc0_streaming() -> Scenario:
    """SoC0 populated with streaming traffic generators."""
    return _paper_grid_scenario(
        name="soc0-streaming",
        preset="SoC0",
        pattern=AccessPattern.STREAMING,
        title="SoC0 with streaming traffic generators",
        description=(
            "The 12-tile SoC0 platform populated exclusively with streaming "
            "traffic generators (long DMA bursts, low reuse) running a "
            "generated three-phase evaluation application."
        ),
    )


@register_scenario
def soc0_irregular() -> Scenario:
    """SoC0 populated with irregular traffic generators."""
    return _paper_grid_scenario(
        name="soc0-irregular",
        preset="SoC0",
        pattern=AccessPattern.IRREGULAR,
        title="SoC0 with irregular traffic generators",
        description=(
            "The 12-tile SoC0 platform populated exclusively with irregular, "
            "latency-bound traffic generators (short sparse accesses), the "
            "configuration where coherent modes shine."
        ),
    )


@register_scenario
def soc1_mixed_traffic() -> Scenario:
    """SoC1 with a mixed traffic-generator set."""
    return _paper_grid_scenario(
        name="soc1-mixed-traffic",
        preset="SoC1",
        pattern=None,
        title="SoC1 with mixed traffic generators",
        description=(
            "The 7-tile SoC1 platform (2 CPUs, 4 memory tiles, 256 KB LLC "
            "partitions) with a traffic-generator set spanning streaming, "
            "strided, and irregular access patterns."
        ),
    )


@register_scenario
def soc2_mixed_traffic() -> Scenario:
    """SoC2 with a mixed traffic-generator set."""
    return _paper_grid_scenario(
        name="soc2-mixed-traffic",
        preset="SoC2",
        pattern=None,
        title="SoC2 with mixed traffic generators",
        description=(
            "The 9-tile SoC2 platform (4 CPUs, only 2 memory tiles) with a "
            "mixed traffic-generator set — the memory-tile-constrained point "
            "of the paper's grid."
        ),
    )


@register_scenario
def soc3_mixed_traffic() -> Scenario:
    """SoC3 with a mixed traffic-generator set (five cacheless tiles)."""
    return _paper_grid_scenario(
        name="soc3-mixed-traffic",
        preset="SoC3",
        pattern=None,
        title="SoC3 with mixed traffic generators and cacheless tiles",
        description=(
            "The 16-tile SoC3 platform where five accelerator tiles lack a "
            "private cache and therefore cannot run fully coherent — the "
            "heterogeneous-capability point of the paper's grid."
        ),
    )
