"""Builtin scenarios, registered on import.

Importing this package publishes every builtin scenario to the registry
(:mod:`repro.scenarios.registry` does so during discovery):

* :mod:`~repro.scenarios.builtin.case_studies` — the paper's Section 5
  case-study SoCs (SoC4 mixed, SoC5 autonomous driving, SoC6 vision);
* :mod:`~repro.scenarios.builtin.examples` — registry ports of the five
  ``examples/`` walkthrough scripts;
* :mod:`~repro.scenarios.builtin.figures` — the Figure 9 traffic-generator
  platforms (SoC0 streaming/irregular, SoC1-SoC3 mixed);
* :mod:`~repro.scenarios.builtin.frontier` — new workloads beyond the
  paper's grid (multi-tenant inference, memory-bound DSP streaming,
  latency-critical V2V bursts with best-effort background traffic).
"""

from repro.scenarios.builtin import case_studies, examples, figures, frontier

__all__ = ["case_studies", "examples", "figures", "frontier"]
