"""Case-study scenarios (paper Section 5) on the registry.

These wrap the hand-written SoC4/SoC5/SoC6 setups of
:mod:`repro.workloads.case_studies`: the SoC preset, the domain-specific
accelerator set, and the domain application, each with distinct training
(instance 0) and testing (instance 1) variants.
"""

from __future__ import annotations

import functools
from typing import List

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.experiments.common import ExperimentSetup
from repro.scenarios.registry import register_scenario
from repro.scenarios.scenario import Scenario
from repro.soc.config import SoCConfig, soc_preset
from repro.utils.rng import SeededRNG
from repro.workloads.case_studies import case_study_accelerators, case_study_application
from repro.workloads.spec import ApplicationSpec


def _case_study_config(label: str) -> SoCConfig:
    """SoC preset for one case-study label."""
    return soc_preset(label)


def _case_study_descriptors(
    label: str, config: SoCConfig, rng: SeededRNG
) -> List[AcceleratorDescriptor]:
    """Accelerator set of one case-study label (fixed, RNG unused)."""
    return case_study_accelerators(label)


def _case_study_app(
    label: str, setup: ExperimentSetup, instance: int, rng: SeededRNG
) -> ApplicationSpec:
    """Application instance for one case-study label.

    The case-study applications derive their footprints from the instance
    index alone (see ``case_studies._sized_footprints``), so training and
    testing variants differ deterministically.
    """
    return case_study_application(label, instance=instance)


def _case_study_scenario(label: str, name: str, title: str, description: str) -> Scenario:
    """Build the scenario wrapping one case-study SoC."""
    return Scenario(
        name=name,
        title=title,
        description=description,
        category="case-study",
        tags=("paper", "section-5", label.lower()),
        config_factory=functools.partial(_case_study_config, label),
        accelerator_factory=functools.partial(_case_study_descriptors, label),
        application_factory=functools.partial(_case_study_app, label),
        policy_kinds=(
            "fixed-non-coh-dma",
            "fixed-llc-coh-dma",
            "fixed-coh-dma",
            "fixed-full-coh",
            "manual",
            "cohmeleon",
        ),
        training_iterations=4,
    )


@register_scenario
def soc4_mixed() -> Scenario:
    """SoC4: one instance of each Table 2 accelerator, mixed workload."""
    return _case_study_scenario(
        "SoC4",
        name="soc4-mixed",
        title="SoC4 mixed multi-application case study",
        description=(
            "One instance of each of the eleven ESP accelerators runs a mixed "
            "multi-application workload: CNN inference, signal processing, "
            "sorting/sparse kernels, and the image-classification pipeline "
            "share the SoC across a light and a heavy phase."
        ),
    )


@register_scenario
def soc5_autonomous() -> Scenario:
    """SoC5: the collaborative-autonomous-vehicles case study."""
    return _case_study_scenario(
        "SoC5",
        name="soc5-autonomous",
        title="SoC5 collaborative autonomous vehicles case study",
        description=(
            "Two FFT and two Viterbi accelerators encode/decode V2V "
            "communication while two Conv-2D and two GEMM accelerators run "
            "CNN inference; a map-fusion phase chains all four kinds."
        ),
    )


@register_scenario
def soc6_vision() -> Scenario:
    """SoC6: the computer-vision case study."""
    return _case_study_scenario(
        "SoC6",
        name="soc6-vision",
        title="SoC6 computer-vision case study",
        description=(
            "Three instances of an image-classification pipeline — "
            "night-vision (undarken), autoencoder (denoise), MLP (classify) — "
            "process an image batch and then a video stream."
        ),
    )
