"""Frontier scenarios: workloads beyond the paper's evaluation grid.

Three new scenarios exercise SoC/NoC/LLC configurations and traffic shapes
the paper never touches:

* ``multi-tenant-inference`` — a bursty inference server on a 12-tile SoC
  with megabyte LLC partitions and duplicated NVDLA engines;
* ``streaming-dsp-chain`` — a memory-bound DSP pipeline on a single-memory-
  tile SoC whose LLC is far smaller than every dataset;
* ``v2v-burst-best-effort`` — latency-critical V2V bursts sharing a SoC
  with best-effort batch traffic pinned to cacheless tiles.

Footprints are drawn per instance from the size-class machinery, so the
training and testing variants differ exactly as the paper's methodology
prescribes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.accelerators.library import accelerator_by_name
from repro.experiments.common import ExperimentSetup
from repro.scenarios.registry import register_scenario
from repro.scenarios.scenario import Scenario
from repro.soc.config import SoCConfig
from repro.units import KB, MB
from repro.utils.rng import SeededRNG
from repro.workloads.sizes import WorkloadSizeClass, footprint_for_class
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec


def _named_binding(names: Sequence[str]):
    """Accelerator factory returning the named library accelerators."""

    def accelerator_factory(
        config: SoCConfig, rng: SeededRNG
    ) -> List[AcceleratorDescriptor]:
        """Bind the frontier scenario's fixed accelerator set."""
        return [accelerator_by_name(name) for name in names]

    return accelerator_factory


def _sized_threads(
    setup: ExperimentSetup,
    rng: SeededRNG,
    prefix: str,
    plan: Sequence[Tuple[Tuple[str, ...], WorkloadSizeClass, int]],
) -> Tuple[ThreadSpec, ...]:
    """Build threads from a ``(chain, size_class, loops)`` plan.

    Footprints are sampled from the size class against the scenario's SoC
    via the passed RNG stream, so different instances (training/testing)
    get different concrete sizes while staying in the same class.
    """
    config = setup.soc_config
    return tuple(
        ThreadSpec(
            thread_id=f"{prefix}{index}",
            accelerator_chain=chain,
            footprint_bytes=footprint_for_class(size_class, config, rng=rng),
            loop_count=loops,
            cpu_index=index % max(config.num_cpus, 1),
        )
        for index, (chain, size_class, loops) in enumerate(plan)
    )


# ----------------------------------------------------------------------
# multi-tenant-inference
# ----------------------------------------------------------------------

def _inference_config() -> SoCConfig:
    """A 12-tile inference-server SoC with megabyte LLC partitions.

    The paper's grid stops at 512 KB LLC partitions and never deploys more
    than one NVDLA; this platform has 4 x 1 MB partitions, a 6x5 NoC, and
    duplicated inference engines.
    """
    return SoCConfig(
        name="InferenceSoC",
        num_accelerator_tiles=12,
        noc_rows=6,
        noc_cols=5,
        num_cpus=4,
        num_mem_tiles=4,
        llc_partition_bytes=1 * MB,
        l2_bytes=64 * KB,
        acc_l2_bytes=32 * KB,
    )


_INFERENCE_ACCELERATORS = (
    "NVDLA",
    "NVDLA",
    "Conv-2D",
    "Conv-2D",
    "GEMM",
    "GEMM",
    "MLP",
    "MLP",
    "Autoencoder",
    "Autoencoder",
    "MRI-Q",
    "Sort",
)

_TENANT_CHAINS: Tuple[Tuple[str, ...], ...] = (
    ("NVDLA",),
    ("Conv-2D", "GEMM", "MLP"),
    ("Autoencoder", "MLP"),
    ("NVDLA", "MLP"),
    ("Conv-2D", "GEMM"),
    ("MRI-Q",),
    ("Autoencoder", "NVDLA"),
    ("GEMM", "MLP"),
)


def _inference_app(
    setup: ExperimentSetup, instance: int, rng: SeededRNG
) -> ApplicationSpec:
    """Bursty multi-tenant load: steady state, a request burst, then drain."""
    steady = PhaseSpec(
        name="steady",
        threads=_sized_threads(
            setup,
            rng,
            "steady",
            [
                (_TENANT_CHAINS[index], WorkloadSizeClass.MEDIUM, 2)
                for index in range(4)
            ],
        ),
    )
    burst_sizes = (
        WorkloadSizeClass.LARGE,
        WorkloadSizeClass.EXTRA_LARGE,
        WorkloadSizeClass.LARGE,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.EXTRA_LARGE,
        WorkloadSizeClass.LARGE,
        WorkloadSizeClass.MEDIUM,
        WorkloadSizeClass.LARGE,
    )
    burst = PhaseSpec(
        name="burst",
        threads=_sized_threads(
            setup,
            rng,
            "burst",
            [
                (_TENANT_CHAINS[index], burst_sizes[index], 1)
                for index in range(len(_TENANT_CHAINS))
            ],
        ),
    )
    drain = PhaseSpec(
        name="drain",
        threads=_sized_threads(
            setup,
            rng,
            "drain",
            [
                (("NVDLA",), WorkloadSizeClass.SMALL, 2),
                (("Autoencoder", "MLP"), WorkloadSizeClass.SMALL, 2),
            ],
        ),
    )
    return ApplicationSpec(
        name=f"multi-tenant-inference-{instance}",
        phases=(steady, burst, drain),
        metadata={"instance": instance},
    )


@register_scenario
def multi_tenant_inference() -> Scenario:
    """A bursty multi-tenant inference server with duplicated NVDLAs."""
    return Scenario(
        name="multi-tenant-inference",
        title="Bursty multi-tenant inference server",
        description=(
            "Eight tenants share a 12-tile inference SoC with two NVDLA "
            "engines and 4 MB of aggregate LLC. A steady phase of medium "
            "requests is followed by a burst whose large/extra-large "
            "footprints overflow the LLC, then a small-request drain — the "
            "load shape where the best coherence mode flips twice within "
            "one application."
        ),
        category="frontier",
        tags=("frontier", "inference", "multi-tenant", "nvdla"),
        config_factory=_inference_config,
        accelerator_factory=_named_binding(_INFERENCE_ACCELERATORS),
        application_factory=_inference_app,
        policy_kinds=(
            "fixed-non-coh-dma",
            "fixed-coh-dma",
            "rand",
            "manual",
            "cohmeleon",
        ),
        training_iterations=3,
    )


# ----------------------------------------------------------------------
# streaming-dsp-chain
# ----------------------------------------------------------------------

def _dsp_config() -> SoCConfig:
    """A lean DSP SoC with one memory tile and a 128 KB LLC.

    Every paper platform has at least two memory tiles and 512 KB of
    aggregate LLC; this one funnels all traffic through a single DRAM
    channel behind a 128 KB partition, making every phase memory-bound.
    """
    return SoCConfig(
        name="DspSoC",
        num_accelerator_tiles=6,
        noc_rows=4,
        noc_cols=3,
        num_cpus=1,
        num_mem_tiles=1,
        llc_partition_bytes=128 * KB,
        l2_bytes=16 * KB,
    )


_DSP_ACCELERATORS = ("FFT", "FFT", "Viterbi", "Sort", "SPMV", "Sort")


def _dsp_app(setup: ExperimentSetup, instance: int, rng: SeededRNG) -> ApplicationSpec:
    """A streaming DSP chain whose datasets dwarf the LLC."""
    ingest = PhaseSpec(
        name="ingest",
        threads=_sized_threads(
            setup,
            rng,
            "in",
            [
                (("FFT", "Viterbi"), WorkloadSizeClass.EXTRA_LARGE, 2),
                (("FFT",), WorkloadSizeClass.EXTRA_LARGE, 2),
            ],
        ),
    )
    transform = PhaseSpec(
        name="transform",
        threads=_sized_threads(
            setup,
            rng,
            "tr",
            [
                (("Sort", "SPMV"), WorkloadSizeClass.EXTRA_LARGE, 2),
                (("Sort",), WorkloadSizeClass.LARGE, 2),
            ],
        ),
    )
    aggregate = PhaseSpec(
        name="aggregate",
        threads=_sized_threads(
            setup,
            rng,
            "ag",
            [(("FFT", "Sort", "SPMV"), WorkloadSizeClass.EXTRA_LARGE, 1)],
        ),
    )
    return ApplicationSpec(
        name=f"streaming-dsp-{instance}",
        phases=(ingest, transform, aggregate),
        metadata={"instance": instance},
    )


@register_scenario
def streaming_dsp_chain() -> Scenario:
    """A memory-bound streaming DSP chain on a single-memory-tile SoC."""
    return Scenario(
        name="streaming-dsp-chain",
        title="Memory-bound streaming DSP chain",
        description=(
            "FFT -> Viterbi -> Sort -> SPMV pipelines stream extra-large "
            "datasets through a SoC with a single memory tile and a 128 KB "
            "LLC — a configuration the paper grid never reaches, where "
            "coherent modes must pay for an LLC that cannot help and the "
            "single DRAM channel is the bottleneck."
        ),
        category="frontier",
        tags=("frontier", "dsp", "memory-bound", "streaming"),
        config_factory=_dsp_config,
        accelerator_factory=_named_binding(_DSP_ACCELERATORS),
        application_factory=_dsp_app,
        policy_kinds=(
            "fixed-non-coh-dma",
            "fixed-llc-coh-dma",
            "fixed-coh-dma",
            "manual",
            "cohmeleon",
        ),
        training_iterations=3,
    )


# ----------------------------------------------------------------------
# v2v-burst-best-effort
# ----------------------------------------------------------------------

def _v2v_config() -> SoCConfig:
    """A 10-tile V2V SoC with three memory tiles and two cacheless tiles.

    The odd memory-tile count and the cacheless best-effort tiles (indices
    8 and 9, which therefore cannot run fully coherent) are both outside
    the paper's Table 4 grid.
    """
    return SoCConfig(
        name="V2VSoC",
        num_accelerator_tiles=10,
        noc_rows=5,
        noc_cols=3,
        num_cpus=2,
        num_mem_tiles=3,
        llc_partition_bytes=256 * KB,
        l2_bytes=32 * KB,
        accelerators_without_cache=(8, 9),
    )


_V2V_ACCELERATORS = (
    "FFT",
    "FFT",
    "Viterbi",
    "Viterbi",
    "Conv-2D",
    "Conv-2D",
    "GEMM",
    "GEMM",
    "Sort",  # best-effort, cacheless tile
    "SPMV",  # best-effort, cacheless tile
)


def _v2v_app(setup: ExperimentSetup, instance: int, rng: SeededRNG) -> ApplicationSpec:
    """Latency-critical V2V bursts over continuous best-effort traffic."""
    background = PhaseSpec(
        name="background",
        threads=_sized_threads(
            setup,
            rng,
            "bg",
            [
                (("Sort",), WorkloadSizeClass.EXTRA_LARGE, 2),
                (("SPMV",), WorkloadSizeClass.LARGE, 2),
            ],
        ),
    )
    burst = PhaseSpec(
        name="v2v-burst",
        threads=_sized_threads(
            setup,
            rng,
            "v2v",
            [
                (("FFT", "Viterbi"), WorkloadSizeClass.SMALL, 3),
                (("FFT", "Viterbi"), WorkloadSizeClass.SMALL, 3),
                (("FFT", "Viterbi"), WorkloadSizeClass.SMALL, 3),
                (("FFT", "Viterbi"), WorkloadSizeClass.SMALL, 3),
                (("Sort",), WorkloadSizeClass.EXTRA_LARGE, 1),
                (("SPMV",), WorkloadSizeClass.LARGE, 1),
            ],
        ),
    )
    fusion = PhaseSpec(
        name="fusion",
        threads=_sized_threads(
            setup,
            rng,
            "fu",
            [
                (("Conv-2D", "GEMM"), WorkloadSizeClass.MEDIUM, 2),
                (("Conv-2D", "GEMM"), WorkloadSizeClass.MEDIUM, 2),
                (("Sort",), WorkloadSizeClass.EXTRA_LARGE, 1),
            ],
        ),
    )
    return ApplicationSpec(
        name=f"v2v-burst-{instance}",
        phases=(background, burst, fusion),
        metadata={"instance": instance},
    )


@register_scenario
def v2v_burst_best_effort() -> Scenario:
    """Latency-critical V2V bursts sharing a SoC with best-effort traffic."""
    return Scenario(
        name="v2v-burst-best-effort",
        title="Latency-critical V2V bursts with best-effort background",
        description=(
            "Four small latency-critical FFT -> Viterbi V2V flows burst on "
            "top of continuous extra-large Sort/SPMV batch traffic pinned "
            "to cacheless best-effort tiles, on a 10-tile SoC with three "
            "memory tiles. The policy must keep the tiny bursts coherent "
            "while steering the batch traffic away from the shared LLC."
        ),
        category="frontier",
        tags=("frontier", "v2v", "latency-critical", "best-effort"),
        config_factory=_v2v_config,
        accelerator_factory=_named_binding(_V2V_ACCELERATORS),
        application_factory=_v2v_app,
        policy_kinds=(
            "fixed-non-coh-dma",
            "fixed-coh-dma",
            "fixed-full-coh",
            "manual",
            "cohmeleon",
        ),
        training_iterations=3,
    )
