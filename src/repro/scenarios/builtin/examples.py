"""Registry ports of the five ``examples/`` walkthrough scripts.

Each scenario reproduces the platform and workload of one example script
so the same study can be listed, parameterized, cached, and fanned out
through the sweep runner (``python -m repro.scenarios run <name>``)
instead of living only as hand-rolled Python.
"""

from __future__ import annotations

from typing import List

from repro.accelerators.descriptor import AccessPattern, AcceleratorDescriptor
from repro.accelerators.library import ACCELERATOR_LIBRARY, accelerator_by_name
from repro.accelerators.traffic import TrafficGeneratorConfig
from repro.experiments.common import ExperimentSetup
from repro.scenarios.registry import register_scenario
from repro.scenarios.scenario import Scenario
from repro.soc.config import SoCConfig, soc_preset
from repro.units import KB, MB
from repro.utils.rng import SeededRNG
from repro.workloads.case_studies import case_study_accelerators, case_study_application
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec


def _library_binding(config: SoCConfig, rng: SeededRNG) -> List[AcceleratorDescriptor]:
    """The default ESP library binding: cycle the library to fill the tiles."""
    library = list(ACCELERATOR_LIBRARY)
    return [
        library[index % len(library)] for index in range(config.num_accelerator_tiles)
    ]


def _soc1_config() -> SoCConfig:
    """SoC1 preset (the quickstart platform)."""
    return soc_preset("SoC1")


def _quickstart_app(
    setup: ExperimentSetup, instance: int, rng: SeededRNG
) -> ApplicationSpec:
    """The quickstart application: a light phase and a heavier parallel phase.

    Footprints are scaled slightly per instance so the training and testing
    variants differ, mirroring the paper's two-instance methodology.
    """
    scale = 1.0 + 0.25 * instance
    light = PhaseSpec(
        name="light",
        threads=(
            ThreadSpec("t0", ("FFT", "GEMM"), int(24 * KB * scale), loop_count=2),
            ThreadSpec("t1", ("Autoencoder",), int(48 * KB * scale), loop_count=2),
        ),
    )
    heavy = PhaseSpec(
        name="heavy",
        threads=(
            ThreadSpec("h0", ("FFT", "GEMM"), int(1 * MB * scale), loop_count=1),
            ThreadSpec("h1", ("Conv-2D",), int(512 * KB * scale), loop_count=2),
            ThreadSpec("h2", ("Cholesky",), int(96 * KB * scale), loop_count=2),
        ),
    )
    return ApplicationSpec(
        name=f"quickstart-{instance}", phases=(light, heavy), metadata={"instance": instance}
    )


@register_scenario
def quickstart() -> Scenario:
    """Port of ``examples/quickstart.py``: a small app on SoC1."""
    return Scenario(
        name="quickstart",
        title="Quickstart: two-phase application on SoC1",
        description=(
            "The walkthrough workload from examples/quickstart.py: a light "
            "phase (small FFT->GEMM and Autoencoder datasets) followed by a "
            "heavy phase with megabyte-scale footprints, run on the SoC1 "
            "preset with the default ESP library binding."
        ),
        category="example",
        tags=("example", "soc1", "starter"),
        config_factory=_soc1_config,
        accelerator_factory=_library_binding,
        application_factory=_quickstart_app,
        training_iterations=2,
    )


# ----------------------------------------------------------------------
# examples/coherence_mode_exploration.py
# ----------------------------------------------------------------------

_EXPLORATION_ACCELERATORS = ("Autoencoder", "FFT", "GEMM", "SPMV")
_EXPLORATION_SIZES = (("small", 16 * KB), ("medium", 256 * KB), ("large", 2 * MB))


def _motivation_config() -> SoCConfig:
    """The Section 3 motivation SoC preset."""
    return soc_preset("Motivation")


def _exploration_binding(config: SoCConfig, rng: SeededRNG) -> List[AcceleratorDescriptor]:
    """The four accelerators the exploration example compares."""
    return [accelerator_by_name(name) for name in _EXPLORATION_ACCELERATORS]


def _exploration_app(
    setup: ExperimentSetup, instance: int, rng: SeededRNG
) -> ApplicationSpec:
    """Isolation-style application: one phase per (accelerator, size) pair.

    Each phase runs a single thread invoking a single accelerator, so a
    fixed-mode policy yields exactly the per-mode isolation measurements of
    the example (and of Figure 2 in miniature).
    """
    phases = []
    for accelerator in _EXPLORATION_ACCELERATORS:
        for size_label, footprint in _EXPLORATION_SIZES:
            phases.append(
                PhaseSpec(
                    name=f"{accelerator}-{size_label}",
                    threads=(
                        ThreadSpec(
                            thread_id=f"{accelerator}-{size_label}",
                            accelerator_chain=(accelerator,),
                            footprint_bytes=footprint + instance * 4 * KB,
                            loop_count=1,
                        ),
                    ),
                )
            )
    return ApplicationSpec(
        name=f"mode-exploration-{instance}",
        phases=tuple(phases),
        metadata={"instance": instance},
    )


@register_scenario
def mode_exploration() -> Scenario:
    """Port of ``examples/coherence_mode_exploration.py``."""
    return Scenario(
        name="mode-exploration",
        title="Coherence modes vs. workload size, in isolation",
        description=(
            "The Section 3 motivation in miniature: four accelerators run in "
            "isolation with Small/Medium/Large datasets under each fixed "
            "coherence mode, showing that the best mode depends on both the "
            "accelerator and the size."
        ),
        category="example",
        tags=("example", "motivation", "isolation"),
        config_factory=_motivation_config,
        accelerator_factory=_exploration_binding,
        application_factory=_exploration_app,
        policy_kinds=(
            "fixed-non-coh-dma",
            "fixed-llc-coh-dma",
            "fixed-coh-dma",
            "fixed-full-coh",
        ),
        training_iterations=0,
    )


# ----------------------------------------------------------------------
# examples/autonomous_driving.py and examples/computer_vision_pipeline.py
# ----------------------------------------------------------------------

def _soc5_config() -> SoCConfig:
    """SoC5 preset (autonomous-driving platform)."""
    return soc_preset("SoC5")


def _soc5_binding(config: SoCConfig, rng: SeededRNG) -> List[AcceleratorDescriptor]:
    """The SoC5 case-study accelerator set."""
    return case_study_accelerators("SoC5")


def _soc5_app(setup: ExperimentSetup, instance: int, rng: SeededRNG) -> ApplicationSpec:
    """The SoC5 V2V + CNN application, one variant per instance."""
    return case_study_application("SoC5", instance=instance)


@register_scenario
def example_autonomous_driving() -> Scenario:
    """Port of ``examples/autonomous_driving.py`` (SoC5, four policies)."""
    return Scenario(
        name="example-autonomous-driving",
        title="Autonomous-driving walkthrough (SoC5, four policies)",
        description=(
            "The examples/autonomous_driving.py comparison: the SoC5 V2V + "
            "CNN application under fixed non-coherent DMA, fixed coherent "
            "DMA, the manual heuristic, and Cohmeleon trained online for a "
            "handful of iterations."
        ),
        category="example",
        tags=("example", "soc5", "v2v"),
        config_factory=_soc5_config,
        accelerator_factory=_soc5_binding,
        application_factory=_soc5_app,
        training_iterations=4,
    )


def _soc6_config() -> SoCConfig:
    """SoC6 preset (computer-vision platform)."""
    return soc_preset("SoC6")


def _soc6_binding(config: SoCConfig, rng: SeededRNG) -> List[AcceleratorDescriptor]:
    """The SoC6 case-study accelerator set."""
    return case_study_accelerators("SoC6")


def _soc6_app(setup: ExperimentSetup, instance: int, rng: SeededRNG) -> ApplicationSpec:
    """The SoC6 image-classification application, one variant per instance."""
    return case_study_application("SoC6", instance=instance)


@register_scenario
def example_computer_vision() -> Scenario:
    """Port of ``examples/computer_vision_pipeline.py`` (SoC6)."""
    return Scenario(
        name="example-computer-vision",
        title="Computer-vision walkthrough (SoC6 pipelines)",
        description=(
            "The examples/computer_vision_pipeline.py study: Cohmeleon "
            "learns coherence modes for three night-vision -> autoencoder -> "
            "MLP classification pipelines on SoC6, compared against the "
            "non-coherent-DMA reference and the manual heuristic."
        ),
        category="example",
        tags=("example", "soc6", "vision"),
        config_factory=_soc6_config,
        accelerator_factory=_soc6_binding,
        application_factory=_soc6_app,
        policy_kinds=("fixed-non-coh-dma", "manual", "cohmeleon"),
        training_iterations=5,
    )


# ----------------------------------------------------------------------
# examples/custom_traffic_generator.py
# ----------------------------------------------------------------------

def _custom_soc_config() -> SoCConfig:
    """The 4-tile custom SoC of the custom-traffic example."""
    return SoCConfig(
        name="CustomSoC",
        num_accelerator_tiles=4,
        noc_rows=3,
        noc_cols=3,
        num_cpus=2,
        num_mem_tiles=2,
        llc_partition_bytes=256 * KB,
        l2_bytes=32 * KB,
    )


def _custom_traffic_binding(
    config: SoCConfig, rng: SeededRNG
) -> List[AcceleratorDescriptor]:
    """Two custom traffic-generator accelerators plus FFT and GEMM."""
    streamer = TrafficGeneratorConfig(
        access_pattern=AccessPattern.STREAMING,
        burst_bytes=4096,
        compute_cycles_per_byte=0.3,
        reuse_factor=1.0,
        read_write_ratio=1.0,
        local_mem_bytes=64 * KB,
    ).to_descriptor("Streamer")
    gatherer = TrafficGeneratorConfig(
        access_pattern=AccessPattern.IRREGULAR,
        burst_bytes=64,
        compute_cycles_per_byte=0.5,
        reuse_factor=2.0,
        read_write_ratio=4.0,
        access_fraction=0.5,
        local_mem_bytes=32 * KB,
    ).to_descriptor("Gatherer")
    return [streamer, gatherer, accelerator_by_name("FFT"), accelerator_by_name("GEMM")]


def _custom_traffic_app(
    setup: ExperimentSetup, instance: int, rng: SeededRNG
) -> ApplicationSpec:
    """The custom-traffic application: small inputs, then large inputs."""
    scale = 1.0 + 0.5 * instance
    phase_small = PhaseSpec(
        name="small-inputs",
        threads=(
            ThreadSpec("s0", ("Streamer",), int(24 * KB * scale), loop_count=2),
            ThreadSpec("s1", ("Gatherer",), int(16 * KB * scale), loop_count=2),
            ThreadSpec("s2", ("FFT", "GEMM"), int(32 * KB * scale), loop_count=2),
        ),
    )
    phase_large = PhaseSpec(
        name="large-inputs",
        threads=(
            ThreadSpec("l0", ("Streamer",), int(2 * MB * scale), loop_count=2),
            ThreadSpec("l1", ("Gatherer",), int(1 * MB * scale), loop_count=2),
            ThreadSpec("l2", ("FFT", "GEMM"), int(768 * KB * scale), loop_count=2),
        ),
    )
    return ApplicationSpec(
        name=f"custom-traffic-{instance}",
        phases=(phase_small, phase_large),
        metadata={"instance": instance},
    )


@register_scenario
def example_custom_traffic() -> Scenario:
    """Port of ``examples/custom_traffic_generator.py``."""
    return Scenario(
        name="example-custom-traffic",
        title="Custom traffic-generator accelerators on a custom SoC",
        description=(
            "Two user-defined accelerators — a long-burst streaming engine "
            "and a latency-bound irregular gatherer — deployed next to FFT "
            "and GEMM on a 4-tile custom SoC, exercising the traffic-"
            "generator interface end to end."
        ),
        category="example",
        tags=("example", "traffic-generator", "custom-soc"),
        config_factory=_custom_soc_config,
        accelerator_factory=_custom_traffic_binding,
        application_factory=_custom_traffic_app,
        training_iterations=3,
    )
