"""Execution of one accelerator invocation on the SoC model.

The executor turns an :class:`repro.accelerators.invocation.InvocationRequest`
plus a chosen coherence mode into a discrete-event process: the accelerator
alternates DMA transfers (reads of its input stream, writes of its output
stream) with computation, overlapping communication and computation the way
the pipelined ESP accelerators do.  The DMA transfers are resolved by the
coherence-mode datapath, so the executor itself is mode-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.accelerators.invocation import InvocationRequest
from repro.sim.engine import ResumeAt
from repro.soc.address import Buffer, BufferSegment
from repro.soc.cache import SetAssociativeCache
from repro.soc.coherence import CoherenceMode
from repro.soc.datapath import TransferStats


@dataclass
class ExecutionRecord:
    """Raw outcome of the accelerator-active phase of one invocation."""

    accelerator_cycles: float
    comm_cycles: float
    compute_cycles: float
    stats: TransferStats = field(default_factory=TransferStats)


#: Memo tables for the pure stream-geometry helpers.  The same window and
#: wrap computations repeat on every invocation of the same accelerator and
#: footprint, so both helpers cache their (read-only) results; the caps
#: bound memory on pathological workload diversity.
_WINDOWS_MEMO: dict = {}
_WRAP_MEMO: dict = {}
_MEMO_CAP = 16384


def _stream_windows(total_bytes: int, iterations: int) -> List[Tuple[int, int]]:
    """Split a virtual stream of ``total_bytes`` into per-iteration windows."""
    key = (total_bytes, iterations)
    cached = _WINDOWS_MEMO.get(key)
    if cached is not None:
        return cached
    windows: List[Tuple[int, int]] = []
    for index in range(iterations):
        start = round(index * total_bytes / iterations)
        end = round((index + 1) * total_bytes / iterations)
        if end > start:
            windows.append((start, end - start))
        else:
            windows.append((start, 0))
    if len(_WINDOWS_MEMO) >= _MEMO_CAP:
        _WINDOWS_MEMO.clear()
    _WINDOWS_MEMO[key] = windows
    return windows


def _wrap_region(offset: int, nbytes: int, region_bytes: int) -> List[Tuple[int, int]]:
    """Map a window of a virtual (repeating) stream onto a finite region.

    Re-reading the input several times is modelled as the virtual stream
    wrapping around the input region, so a window may straddle the wrap
    point and be split into up to two pieces.
    """
    if nbytes <= 0 or region_bytes <= 0:
        return []
    key = (offset, nbytes, region_bytes)
    cached = _WRAP_MEMO.get(key)
    if cached is not None:
        return cached
    pieces: List[Tuple[int, int]] = []
    remaining = nbytes
    cursor = offset % region_bytes
    while remaining > 0:
        take = min(remaining, region_bytes - cursor)
        pieces.append((cursor, take))
        remaining -= take
        cursor = 0
    if len(_WRAP_MEMO) >= _MEMO_CAP:
        _WRAP_MEMO.clear()
    _WRAP_MEMO[key] = pieces
    return pieces


class InvocationExecutor:
    """Runs the accelerator-active phase of invocations on the SoC model."""

    #: Upper bound on the number of simulated communicate/compute iterations
    #: per invocation.  Larger workloads group several DMA bursts into one
    #: iteration; the per-burst overheads are still charged by the datapath
    #: because they are derived from the transfer size and burst length.
    MAX_ITERATIONS = 128

    def __init__(self, soc: "Soc") -> None:  # noqa: F821 - forward reference
        self.soc = soc

    # ------------------------------------------------------------------
    def execute(
        self, request: InvocationRequest, mode: CoherenceMode
    ) -> Generator[object, float, ExecutionRecord]:
        """Generator process for the accelerator-active phase.

        Yields simulation delays / resume points and finally *returns* an
        :class:`ExecutionRecord` (retrieved by the caller via ``yield from``).
        """
        engine = self.soc.engine
        descriptor = request.accelerator
        footprint = request.footprint_bytes
        buffer = request.buffer

        private_cache: Optional[SetAssociativeCache] = None
        if mode is CoherenceMode.FULL_COH:
            private_cache = self.soc.private_cache_of(request.tile_name)

        read_total = descriptor.read_bytes(footprint)
        write_total = descriptor.write_bytes(footprint)
        compute_total = descriptor.compute_cycles(footprint)

        input_bytes = min(descriptor.input_bytes(footprint), footprint)
        output_bytes = min(descriptor.output_bytes(footprint), footprint)
        read_region = max(int(input_bytes * descriptor.touched_fraction()), 1)
        write_region = max(int(output_bytes * descriptor.touched_fraction()), 1)
        write_offset = 0 if descriptor.in_place else footprint - output_bytes
        write_region = min(write_region, footprint - write_offset)
        write_region = max(write_region, 1)

        total_bursts = max(
            1, math.ceil((read_total + write_total) / descriptor.burst_bytes)
        )
        iterations = max(1, min(self.MAX_ITERATIONS, total_bursts))
        read_windows = _stream_windows(read_total, iterations)
        write_windows = _stream_windows(write_total, iterations)
        compute_chunk = compute_total / iterations

        comm_cycles = 0.0
        stats = TransferStats()
        start_time = engine.now

        for index in range(iterations):
            iteration_start = engine.now
            finish = iteration_start

            read_offset, read_bytes = read_windows[index]
            cursor = finish
            for piece_offset, piece_bytes in _wrap_region(read_offset, read_bytes, read_region):
                segments = self._segments(buffer, piece_offset, piece_bytes)
                cursor, _ = self.soc.datapath.dma_read(
                    cursor,
                    request.tile_name,
                    segments,
                    mode,
                    descriptor.burst_bytes,
                    private_cache,
                    stats=stats,
                )
            if cursor > finish:
                finish = cursor

            write_virtual_offset, write_bytes = write_windows[index]
            cursor = finish
            for piece_offset, piece_bytes in _wrap_region(
                write_virtual_offset, write_bytes, write_region
            ):
                segments = self._segments(buffer, write_offset + piece_offset, piece_bytes)
                cursor, _ = self.soc.datapath.dma_write(
                    cursor,
                    request.tile_name,
                    segments,
                    mode,
                    descriptor.burst_bytes,
                    private_cache,
                    stats=stats,
                )
            if cursor > finish:
                finish = cursor

            comm_time = finish - iteration_start
            comm_cycles += comm_time
            # Communication and computation overlap within an iteration:
            # the iteration takes as long as the slower of the two.
            duration = comm_time if comm_time > compute_chunk else compute_chunk
            yield ResumeAt(iteration_start + duration)

        accelerator_cycles = engine.now - start_time
        return ExecutionRecord(
            accelerator_cycles=accelerator_cycles,
            comm_cycles=comm_cycles,
            compute_cycles=compute_total,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _segments(
        self, buffer: Buffer, offset: int, nbytes: int
    ) -> List[BufferSegment]:
        """Resolve a (clamped) buffer slice into physical segments."""
        if nbytes <= 0:
            return []
        offset = max(0, min(offset, buffer.size - 1))
        nbytes = min(nbytes, buffer.size - offset)
        return buffer.slice(offset, nbytes)
