"""Introspective SoC status tracking (paper Section 4.1, "Sense").

The paper keeps a small set of global structures in the user-space
invocation API that record, for every active accelerator, its coherence
mode and the memory footprint of its current invocation.  Whenever a new
accelerator is about to be invoked, the runtime takes a *snapshot* of this
state restricted to the memory partitions the new invocation will use; the
snapshot is what both the manually-tuned heuristic and the RL agent's
discretised state are computed from.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.soc.coherence import CoherenceMode

#: Template for the per-mode active counts of a snapshot (one snapshot is
#: taken per invocation, so the labels are resolved once at import time).
_ZERO_PER_MODE: Dict[str, int] = {mode.value: 0 for mode in CoherenceMode}


class ActiveInvocation:
    """Bookkeeping for one accelerator invocation currently in flight."""

    __slots__ = (
        "tile_name",
        "accelerator_name",
        "mode",
        "footprint_bytes",
        "footprint_per_tile",
        "start_time",
    )

    def __init__(
        self,
        tile_name: str,
        accelerator_name: str,
        mode: CoherenceMode,
        footprint_bytes: int,
        footprint_per_tile: Dict[int, int],
        start_time: float,
    ) -> None:
        self.tile_name = tile_name
        self.accelerator_name = accelerator_name
        self.mode = mode
        self.footprint_bytes = footprint_bytes
        self.footprint_per_tile = footprint_per_tile
        self.start_time = start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ActiveInvocation(tile_name={self.tile_name!r}, "
            f"accelerator_name={self.accelerator_name!r}, mode={self.mode}, "
            f"footprint_bytes={self.footprint_bytes})"
        )


class SystemSnapshot:
    """The sensed state used to make one coherence decision.

    All values are raw (continuous); the RL module discretises them into
    the Table 3 state attributes, while the manual heuristic consumes them
    directly.  One snapshot is taken per invocation, so the class uses
    ``__slots__`` instead of a dataclass; treat instances as read-only.

    Attributes
    ----------
    target_footprint_bytes:
        Footprint of the invocation about to start.
    target_mem_tiles:
        Memory tiles (LLC partitions / DRAM controllers) the target uses.
    active_per_mode:
        Number of active accelerators per coherence-mode label (not
        counting the target, which has not started yet).
    non_coh_per_target_tile:
        Average number of active non-coherent accelerators using each of
        the target's memory partitions.
    llc_users_per_target_tile:
        Average number of active accelerators whose requests reach each of
        the target's LLC partitions (LLC-coherent, coherent-DMA, or
        fully-coherent accelerators).
    tile_footprint_bytes:
        Average bytes of active accelerator data mapped to each of the
        target's memory partitions (including the target's own data).
    active_footprint_bytes:
        Total bytes of data of all active accelerators (excluding target).
    active_accelerators:
        Number of active accelerators (excluding the target).
    l2_bytes / llc_partition_bytes / llc_total_bytes:
        Platform capacities, carried along so policies do not need a SoC
        reference: private L2 size, one LLC partition, the aggregate LLC.
    """

    __slots__ = (
        "target_footprint_bytes",
        "target_mem_tiles",
        "active_per_mode",
        "non_coh_per_target_tile",
        "llc_users_per_target_tile",
        "tile_footprint_bytes",
        "active_footprint_bytes",
        "active_accelerators",
        "l2_bytes",
        "llc_partition_bytes",
        "llc_total_bytes",
    )

    def __init__(
        self,
        target_footprint_bytes: int,
        target_mem_tiles: tuple,
        active_per_mode: Mapping[str, int],
        non_coh_per_target_tile: float,
        llc_users_per_target_tile: float,
        tile_footprint_bytes: float,
        active_footprint_bytes: int,
        active_accelerators: int,
        l2_bytes: int = 0,
        llc_partition_bytes: int = 0,
        llc_total_bytes: int = 0,
    ) -> None:
        self.target_footprint_bytes = target_footprint_bytes
        self.target_mem_tiles = target_mem_tiles
        self.active_per_mode = active_per_mode
        self.non_coh_per_target_tile = non_coh_per_target_tile
        self.llc_users_per_target_tile = llc_users_per_target_tile
        self.tile_footprint_bytes = tile_footprint_bytes
        self.active_footprint_bytes = active_footprint_bytes
        self.active_accelerators = active_accelerators
        self.l2_bytes = l2_bytes
        self.llc_partition_bytes = llc_partition_bytes
        self.llc_total_bytes = llc_total_bytes

    def active_count(self, mode: CoherenceMode) -> int:
        """Number of active accelerators currently using ``mode``."""
        return int(self.active_per_mode.get(mode.label, 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SystemSnapshot(target_footprint_bytes={self.target_footprint_bytes}, "
            f"active_accelerators={self.active_accelerators})"
        )


class SystemStatus:
    """Tracks which accelerators are active, with what mode and footprint."""

    def __init__(
        self,
        l2_bytes: int,
        llc_partition_bytes: int,
        num_mem_tiles: int,
    ) -> None:
        self.l2_bytes = l2_bytes
        self.llc_partition_bytes = llc_partition_bytes
        self.num_mem_tiles = num_mem_tiles
        self._active: Dict[str, ActiveInvocation] = {}

    # ------------------------------------------------------------------
    # Registration (called by the runtime at actuate / completion time)
    # ------------------------------------------------------------------
    def register(self, invocation: ActiveInvocation) -> None:
        """Record that an accelerator invocation has started."""
        self._active[invocation.tile_name] = invocation

    def unregister(self, tile_name: str) -> Optional[ActiveInvocation]:
        """Record that the invocation on ``tile_name`` has completed."""
        return self._active.pop(tile_name, None)

    def is_tile_busy(self, tile_name: str) -> bool:
        """Whether an invocation is currently running on ``tile_name``."""
        return tile_name in self._active

    @property
    def active_invocations(self) -> List[ActiveInvocation]:
        """All invocations currently in flight."""
        return list(self._active.values())

    def active_count(self) -> int:
        """Number of invocations currently in flight."""
        return len(self._active)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def footprint_per_tile(self) -> Dict[int, int]:
        """Total active footprint mapped to each memory tile."""
        totals: Dict[int, int] = {tile: 0 for tile in range(self.num_mem_tiles)}
        for invocation in self._active.values():
            for mem_tile, nbytes in invocation.footprint_per_tile.items():
                totals[mem_tile] = totals.get(mem_tile, 0) + nbytes
        return totals

    def snapshot(
        self,
        target_footprint_bytes: int,
        target_footprint_per_tile: Mapping[int, int],
    ) -> SystemSnapshot:
        """Take the sensed state for an invocation that is about to start."""
        target_tiles = tuple(sorted(target_footprint_per_tile))
        if not target_tiles:
            target_tiles = tuple(range(self.num_mem_tiles))

        per_mode: Dict[str, int] = dict(_ZERO_PER_MODE)
        non_coh_users = {tile: 0 for tile in target_tiles}
        llc_users = {tile: 0 for tile in target_tiles}
        tile_footprint = {
            tile: int(target_footprint_per_tile.get(tile, 0)) for tile in target_tiles
        }
        active_footprint = 0

        for invocation in self._active.values():
            mode = invocation.mode
            per_mode[mode.value] += 1
            active_footprint += invocation.footprint_bytes
            is_non_coh = mode is CoherenceMode.NON_COH_DMA
            uses_llc = mode.uses_llc
            for mem_tile, nbytes in invocation.footprint_per_tile.items():
                if mem_tile not in tile_footprint:
                    continue
                tile_footprint[mem_tile] += nbytes
                if is_non_coh:
                    non_coh_users[mem_tile] += 1
                if uses_llc:
                    llc_users[mem_tile] += 1

        num_target_tiles = max(len(target_tiles), 1)
        return SystemSnapshot(
            target_footprint_bytes=target_footprint_bytes,
            target_mem_tiles=target_tiles,
            active_per_mode=dict(per_mode),
            non_coh_per_target_tile=sum(non_coh_users.values()) / num_target_tiles,
            llc_users_per_target_tile=sum(llc_users.values()) / num_target_tiles,
            tile_footprint_bytes=sum(tile_footprint.values()) / num_target_tiles,
            active_footprint_bytes=active_footprint,
            active_accelerators=len(self._active),
            l2_bytes=self.l2_bytes,
            llc_partition_bytes=self.llc_partition_bytes,
            llc_total_bytes=self.llc_partition_bytes * self.num_mem_tiles,
        )

    def reset(self) -> None:
        """Forget all active invocations (used between experiments)."""
        self._active.clear()
