"""Attribution of shared DRAM counters to individual accelerators.

When several accelerators are in flight, the per-memory-tile DRAM counters
measure their combined traffic.  The paper deliberately avoids extra
hardware for exact per-accelerator tracking and instead approximates the
share of accelerator ``k`` at controller ``m`` as::

    ddr(k, m) = ddr_total(m) * footprint(k, m) / sum_acc footprint(acc, m)

where ``ddr_total(m)`` is the observed change of controller ``m``'s counter
during the invocation and the sum runs over all accelerators active at that
controller (including ``k``).  This module implements that formula.
"""

from __future__ import annotations

from typing import Dict, Mapping


def attribute_ddr_accesses(
    ddr_delta_per_tile: Mapping[int, int],
    target_footprint_per_tile: Mapping[int, int],
    active_footprint_per_tile: Mapping[int, int],
) -> float:
    """Return the off-chip accesses attributed to the target accelerator.

    Parameters
    ----------
    ddr_delta_per_tile:
        Change of each DRAM controller's access counter during the
        invocation.
    target_footprint_per_tile:
        Bytes of the target accelerator's data mapped to each controller.
    active_footprint_per_tile:
        Total bytes of *all* active accelerators' data (including the
        target's) mapped to each controller at evaluation time.
    """
    attributed = 0.0
    for mem_tile, delta in ddr_delta_per_tile.items():
        if delta <= 0:
            continue
        target_bytes = float(target_footprint_per_tile.get(mem_tile, 0))
        if target_bytes <= 0.0:
            continue
        total_bytes = float(active_footprint_per_tile.get(mem_tile, 0))
        share = 1.0 if total_bytes <= target_bytes else target_bytes / total_bytes
        attributed += delta * share
    return attributed


def combine_footprints(
    *footprints: Mapping[int, int],
) -> Dict[int, int]:
    """Sum several per-tile footprint mappings into one."""
    combined: Dict[int, int] = {}
    for footprint in footprints:
        for mem_tile, nbytes in footprint.items():
            combined[mem_tile] = combined.get(mem_tile, 0) + nbytes
    return combined
