"""ESP-like accelerator invocation runtime.

This package models the software layer the paper adds to the ESP
accelerator-invocation API: the introspective tracking of SoC status
("sense"), the coherence decision hook ("decide"), the actuation of the
chosen mode including any required software cache flushes ("actuate"), and
the performance evaluation based on the hardware monitors ("evaluate"),
including the footprint-proportional attribution of shared DRAM counters
to individual accelerators.
"""

from repro.runtime.api import AcceleratorBinding, EspRuntime
from repro.runtime.attribution import attribute_ddr_accesses
from repro.runtime.status import ActiveInvocation, SystemSnapshot, SystemStatus

__all__ = [
    "EspRuntime",
    "AcceleratorBinding",
    "attribute_ddr_accesses",
    "SystemStatus",
    "SystemSnapshot",
    "ActiveInvocation",
]
