"""The ESP-like accelerator invocation API with runtime coherence selection.

:class:`EspRuntime` is the software layer an application (or the workload
harness) uses to invoke accelerators.  Every invocation goes through the
four phases of the paper's framework:

1. **Sense** — take a snapshot of the SoC status (active accelerators,
   their coherence modes and footprints) restricted to the memory
   partitions the new invocation will touch.
2. **Decide** — ask the configured coherence policy (fixed, random, the
   manual heuristic, or Cohmeleon's RL agent) which mode to use, limited to
   the modes the target accelerator tile supports.
3. **Actuate** — perform the software cache flushes the chosen mode
   requires and start the accelerator.
4. **Evaluate** — when the accelerator completes, read the hardware
   monitors, attribute the shared DRAM counters to this invocation with
   the footprint-proportional approximation, and report the result back to
   the policy (which is how Cohmeleon learns online).

The runtime also arbitrates accelerator tiles between software threads:
if every tile implementing the requested accelerator is busy, the calling
thread waits until one frees up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from repro.accelerators.descriptor import AcceleratorDescriptor
from repro.accelerators.invocation import InvocationRequest, InvocationResult
from repro.errors import ConfigurationError, PolicyError
from repro.runtime.attribution import attribute_ddr_accesses, combine_footprints
from repro.runtime.executor import InvocationExecutor
from repro.runtime.status import ActiveInvocation, SystemStatus
from repro.sim.engine import ResumeAt
from repro.soc.address import Buffer
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.soc.soc import Soc


@dataclass
class AcceleratorBinding:
    """Binding of one accelerator descriptor to one accelerator tile."""

    tile_name: str
    tile_index: int
    descriptor: AcceleratorDescriptor
    has_private_cache: bool

    @property
    def supported_modes(self) -> List[CoherenceMode]:
        """Coherence modes this tile supports."""
        modes = [m for m in COHERENCE_MODES if m is not CoherenceMode.FULL_COH]
        if self.has_private_cache:
            modes.append(CoherenceMode.FULL_COH)
        return modes


class EspRuntime:
    """Accelerator invocation runtime with runtime coherence selection."""

    #: Polling interval (cycles) used while waiting for a busy tile.
    TILE_POLL_CYCLES = 500.0

    def __init__(self, soc: Soc, policy: "CoherencePolicy") -> None:  # noqa: F821
        self.soc = soc
        self.policy = policy
        config = soc.config
        self.status = SystemStatus(
            l2_bytes=config.l2_bytes,
            llc_partition_bytes=config.llc_partition_bytes,
            num_mem_tiles=config.num_mem_tiles,
        )
        self.executor = InvocationExecutor(soc)
        self.bindings: Dict[str, AcceleratorBinding] = {}
        self._bindings_by_accelerator: Dict[str, List[AcceleratorBinding]] = {}
        self._busy_tiles: set = set()
        self.results: List[InvocationResult] = []

    # ------------------------------------------------------------------
    # Accelerator binding
    # ------------------------------------------------------------------
    def bind_accelerator(
        self, descriptor: AcceleratorDescriptor, tile_index: Optional[int] = None
    ) -> AcceleratorBinding:
        """Bind ``descriptor`` to an accelerator tile (next free one by default)."""
        if tile_index is None:
            tile_index = len(self.bindings)
        if tile_index >= self.soc.config.num_accelerator_tiles:
            raise ConfigurationError(
                f"cannot bind {descriptor.name}: SoC {self.soc.config.name} has only "
                f"{self.soc.config.num_accelerator_tiles} accelerator tiles"
            )
        tile_name = self.soc.accelerator_tile_name(tile_index)
        if tile_name in self.bindings:
            raise ConfigurationError(f"tile {tile_name} is already bound")
        binding = AcceleratorBinding(
            tile_name=tile_name,
            tile_index=tile_index,
            descriptor=descriptor,
            has_private_cache=self.soc.private_cache_of(tile_name) is not None,
        )
        self.bindings[tile_name] = binding
        self._bindings_by_accelerator.setdefault(descriptor.name, []).append(binding)
        return binding

    def bind_library(self, descriptors: Sequence[AcceleratorDescriptor]) -> None:
        """Bind a list of descriptors to consecutive accelerator tiles."""
        for descriptor in descriptors:
            self.bind_accelerator(descriptor)

    def bindings_for(self, accelerator_name: str) -> List[AcceleratorBinding]:
        """All tiles implementing ``accelerator_name``."""
        bindings = self._bindings_by_accelerator.get(accelerator_name, [])
        if not bindings:
            raise ConfigurationError(
                f"no accelerator tile is bound to {accelerator_name!r} on "
                f"{self.soc.config.name}"
            )
        return bindings

    def bound_accelerator_names(self) -> List[str]:
        """Names of all accelerators bound to this SoC."""
        return sorted(self._bindings_by_accelerator)

    # ------------------------------------------------------------------
    # Device arbitration
    # ------------------------------------------------------------------
    def acquire_tile(
        self, accelerator_name: str
    ) -> Generator[object, float, AcceleratorBinding]:
        """Process: wait for (and lock) a tile implementing ``accelerator_name``."""
        candidates = self.bindings_for(accelerator_name)
        while True:
            for binding in candidates:
                if binding.tile_name not in self._busy_tiles:
                    self._busy_tiles.add(binding.tile_name)
                    return binding
            yield self.TILE_POLL_CYCLES

    def release_tile(self, binding: AcceleratorBinding) -> None:
        """Unlock a tile acquired with :meth:`acquire_tile`."""
        self._busy_tiles.discard(binding.tile_name)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def invoke(
        self, request: InvocationRequest
    ) -> Generator[object, float, InvocationResult]:
        """Process: run one accelerator invocation through sense/decide/actuate/evaluate."""
        engine = self.soc.engine
        tile_name = request.tile_name
        binding = self.bindings.get(tile_name)
        if binding is None:
            raise ConfigurationError(f"tile {tile_name} has no bound accelerator")

        start_time = engine.now
        footprint_per_tile = self._footprint_per_tile(request.buffer, request.footprint_bytes)

        # (1) Sense.
        snapshot = self.status.snapshot(request.footprint_bytes, footprint_per_tile)

        # (2) Decide.
        supported = binding.supported_modes
        mode = self.policy.select_mode(snapshot, request, supported)
        if mode not in supported:
            raise PolicyError(
                f"policy {self.policy.name} selected unsupported mode {mode} "
                f"for tile {tile_name}"
            )
        policy_overhead = float(self.policy.overhead_cycles)

        ddr_before = self.soc.monitors.ddr_snapshot()

        # Device-driver overhead plus the coherence-selection overhead.
        yield self.soc.config.timing.driver_base_cycles + policy_overhead

        # (3) Actuate: software flushes for the chosen mode, then start.
        segments = request.buffer.slice(0, request.footprint_bytes)
        flush_finish, flush_stats = self.soc.datapath.flush_for_invocation(
            engine.now,
            mode,
            segments,
            exclude_private=self.soc.private_cache_of(tile_name),
        )
        if flush_finish > engine.now:
            yield ResumeAt(flush_finish)

        active = ActiveInvocation(
            tile_name=tile_name,
            accelerator_name=request.accelerator.name,
            mode=mode,
            footprint_bytes=request.footprint_bytes,
            footprint_per_tile=dict(footprint_per_tile),
            start_time=engine.now,
        )
        self.status.register(active)
        self.soc.monitors.reset_accelerator(tile_name)

        record = yield from self.executor.execute(request, mode)
        self.soc.monitors.add_accelerator_cycles(
            tile_name, record.accelerator_cycles, record.comm_cycles
        )

        # (4) Evaluate.
        ddr_after = self.soc.monitors.ddr_snapshot()
        ddr_delta = ddr_before.delta(ddr_after)
        active_footprints = combine_footprints(
            *(inv.footprint_per_tile for inv in self.status.active_invocations)
        )
        attributed = attribute_ddr_accesses(ddr_delta, footprint_per_tile, active_footprints)
        self.status.unregister(tile_name)

        total_cycles = engine.now - start_time
        details = record.stats.as_dict()
        details.update(
            {
                "flush_writebacks": flush_stats.flush_writebacks
                + details.get("flush_writebacks", 0),
                "flush_invalidations": flush_stats.flush_invalidations
                + details.get("flush_invalidations", 0),
                "flush_dram_writes": flush_stats.dram_write_lines,
                "compute_cycles": record.compute_cycles,
            }
        )
        result = InvocationResult(
            accelerator_name=request.accelerator.name,
            tile_name=tile_name,
            mode=mode,
            footprint_bytes=request.footprint_bytes,
            total_cycles=total_cycles,
            accelerator_cycles=record.accelerator_cycles,
            comm_cycles=record.comm_cycles,
            ddr_accesses=attributed,
            policy_overhead_cycles=policy_overhead,
            start_time=start_time,
            finish_time=engine.now,
            details=details,
        )
        self.policy.observe_result(request, mode, snapshot, result)
        self.results.append(result)
        return result

    def invoke_by_name(
        self,
        accelerator_name: str,
        buffer: Buffer,
        footprint_bytes: int,
        cpu_index: int = 0,
        thread_id: Optional[str] = None,
    ) -> Generator[object, float, InvocationResult]:
        """Process: acquire a tile for ``accelerator_name`` and invoke it."""
        binding = yield from self.acquire_tile(accelerator_name)
        try:
            request = InvocationRequest(
                accelerator=binding.descriptor,
                tile_name=binding.tile_name,
                buffer=buffer,
                footprint_bytes=footprint_bytes,
                cpu_index=cpu_index,
                thread_id=thread_id,
            )
            result = yield from self.invoke(request)
        finally:
            self.release_tile(binding)
        return result

    # ------------------------------------------------------------------
    # Helpers and bookkeeping
    # ------------------------------------------------------------------
    def _footprint_per_tile(self, buffer: Buffer, footprint_bytes: int) -> Dict[int, int]:
        return buffer.footprint_within(footprint_bytes)

    def clear_results(self) -> None:
        """Drop the accumulated invocation results."""
        self.results.clear()

    def total_ddr_accesses(self) -> int:
        """Total off-chip accesses measured since the SoC was last reset."""
        return self.soc.monitors.total_ddr_accesses()
