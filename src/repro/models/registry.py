"""The model registry: a directory of named trained-policy artifacts.

The layout is deliberately boring — one ``<name>.json`` artifact document
per model, directly under the registry root — so artifacts can be copied,
diffed, uploaded as CI build artifacts, and inspected with nothing but a
JSON pretty-printer.  The default root is ``.repro-models`` in the current
directory, overridable with the ``REPRO_MODELS_DIR`` environment variable
or the ``--models-dir`` CLI flag.

Names are restricted to lower-case letters, digits, dots, dashes, and
underscores (no path separators), so a registry name can never escape the
registry directory.
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import ModelError
from repro.models.artifact import PolicyArtifact, load_artifact

#: Environment variable overriding the default registry directory.
MODELS_DIR_ENV = "REPRO_MODELS_DIR"

#: Registry directory used when neither the env var nor a flag names one.
DEFAULT_MODELS_DIR = ".repro-models"

_NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9._-]*$")


def default_models_dir() -> Path:
    """The registry root: ``$REPRO_MODELS_DIR`` or ``.repro-models``."""
    return Path(os.environ.get(MODELS_DIR_ENV) or DEFAULT_MODELS_DIR)


def validate_model_name(name: str) -> str:
    """Return ``name`` if it is a legal registry name, else raise."""
    if not _NAME_PATTERN.match(name):
        raise ModelError(
            f"invalid model name {name!r}: use lower-case letters, digits, "
            "dots, dashes, and underscores (must start alphanumeric)"
        )
    return name


class ModelRegistry:
    """Saves, loads, and enumerates artifacts under one directory."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_models_dir()

    # ------------------------------------------------------------------
    def path_for(self, name: str) -> Path:
        """Filesystem location of the artifact registered as ``name``."""
        return self.root / f"{validate_model_name(name)}.json"

    def __contains__(self, name: str) -> bool:
        return self.path_for(name).is_file()

    def names(self) -> List[str]:
        """Sorted names of every artifact in the registry."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("*.json")
            if _NAME_PATTERN.match(path.stem)
        )

    # ------------------------------------------------------------------
    def save(self, artifact: PolicyArtifact, replace: bool = False) -> Path:
        """Register ``artifact`` under its name; return the written path.

        Refuses to overwrite an existing model unless ``replace`` is set,
        so retraining under a reused name is always an explicit decision.
        """
        path = self.path_for(artifact.name)
        if path.exists() and not replace:
            raise ModelError(
                f"model {artifact.name!r} already exists at {path}; "
                "pass replace/--force to overwrite"
            )
        return artifact.save(path)

    def load(self, name: str, expected_digest: Optional[str] = None) -> PolicyArtifact:
        """Load and digest-verify the artifact registered as ``name``."""
        path = self.path_for(name)
        if not path.is_file():
            available = ", ".join(self.names()) or "none"
            raise ModelError(
                f"no model named {name!r} in {self.root} (available: {available})"
            )
        artifact = load_artifact(path, expected_digest=expected_digest)
        if artifact.name != name:
            raise ModelError(
                f"{path}: artifact is named {artifact.name!r}, expected {name!r}"
            )
        return artifact

    def load_retry(
        self,
        name: str,
        expected_digest: Optional[str] = None,
        attempts: int = 2,
        delay_s: float = 0.01,
    ) -> PolicyArtifact:
        """Load ``name`` with a short retry on :class:`ModelError`.

        Artifacts are committed with ``atomic_write_text`` (an
        ``os.replace`` of a complete temp file), so a reader racing a
        writer sees the old document or the new one — but never half of
        each — on POSIX filesystems.  Readers can still lose directory-level
        races (a name observed by ``names()`` just before its file is
        being replaced, or briefly absent on filesystems without atomic
        rename semantics).  This helper turns those transient races into a
        successful read of whichever version won: it retries the load once
        (``attempts`` times in total) after ``delay_s``.  A genuinely
        missing, corrupt, or digest-mismatched artifact still raises the
        last :class:`ModelError` after the final attempt.

        Long-lived readers — the serving hot-reload path in
        :mod:`repro.serving` most of all — should prefer this over
        :meth:`load`.
        """
        attempts = max(1, attempts)
        last_error: Optional[ModelError] = None
        for attempt in range(attempts):
            try:
                return self.load(name, expected_digest=expected_digest)
            except ModelError as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    time.sleep(delay_s)
        assert last_error is not None  # attempts >= 1, loop always runs
        raise last_error

    def load_all(self) -> List[PolicyArtifact]:
        """Load every artifact in the registry, in name order."""
        return [self.load(name) for name in self.names()]

    def delete(self, name: str) -> bool:
        """Remove one model; return whether it existed."""
        path = self.path_for(name)
        if not path.is_file():
            return False
        path.unlink()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelRegistry({str(self.root)!r})"


def resolve_pretrained(
    name_or_path: str, models_dir: Optional[Union[str, Path]] = None
) -> PolicyArtifact:
    """Resolve a ``--pretrained`` CLI target: a registry name or a file path.

    Anything ending in ``.json`` that exists on disk outside the registry
    is treated as a direct artifact path; everything else is looked up in
    the registry.
    """
    registry = ModelRegistry(models_dir)
    candidate = Path(name_or_path)
    if name_or_path.endswith(".json") and candidate.is_file():
        return load_artifact(candidate)
    return registry.load(name_or_path)
