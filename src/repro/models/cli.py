"""``python -m repro.models`` — train, inspect, export, and evaluate models.

Examples
--------
::

    python -m repro.models train quickstart --name qs-demo
    python -m repro.models train soc1-mixed-traffic --name soc1 --seed 7
    python -m repro.models list
    python -m repro.models describe qs-demo
    python -m repro.models export qs-demo --out artifact.json
    python -m repro.models eval qs-demo
    python -m repro.models eval soc1 --scenario soc2-mixed-traffic
    python -m repro.models serve qs-demo --port 8123

``train`` accepts a registered scenario name or a ``.toml``/``.json``
scenario-file path and dispatches the training run through the sweep
runner (so a retrain with unchanged inputs is a cache hit).  ``eval``
evaluates a frozen artifact on any scenario — by default the one it was
trained on; pointing it elsewhere is the cross-platform transfer study.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, TextIO

from repro.errors import ModelError, ReproError
from repro.experiments.sweep.config import (
    RunConfig,
    add_runner_arguments,
    positive_int as _positive_int,
)
from repro.experiments.sweep.pool import SweepRunner
from repro.models.registry import DEFAULT_MODELS_DIR, ModelRegistry
from repro.utils.tables import format_table


def _add_models_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--models-dir",
        default=None,
        metavar="DIR",
        help=f"model registry directory (default: $REPRO_MODELS_DIR or {DEFAULT_MODELS_DIR})",
    )


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    # Single-sourced from repro.experiments.sweep.config so the runner
    # flags behave identically to python -m repro.experiments.
    add_runner_arguments(parser)


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.models`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.models",
        description="Train, inspect, export, and evaluate trained-policy artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train_parser = commands.add_parser(
        "train", help="train a Cohmeleon policy on a scenario and register it"
    )
    train_parser.add_argument("scenario", help="scenario name or scenario-file path")
    train_parser.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="registry name for the artifact (default: the scenario name)",
    )
    train_parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario's default seed"
    )
    train_parser.add_argument(
        "--training-iterations",
        type=_positive_int,
        default=None,
        metavar="N",
        help="override the scenario's training schedule length",
    )
    train_parser.add_argument(
        "--force", action="store_true", help="overwrite an existing same-named model"
    )
    _add_models_dir(train_parser)
    _add_runner_flags(train_parser)

    list_parser = commands.add_parser("list", help="list registered models")
    list_parser.add_argument(
        "--json", action="store_true", dest="as_json", help="emit JSON"
    )
    _add_models_dir(list_parser)

    describe_parser = commands.add_parser(
        "describe", help="show one model's provenance, stats, and digest"
    )
    describe_parser.add_argument("name", help="registered model name")
    describe_parser.add_argument(
        "--json", action="store_true", dest="as_json", help="emit JSON"
    )
    _add_models_dir(describe_parser)

    export_parser = commands.add_parser(
        "export", help="write one model's canonical artifact document to a file"
    )
    export_parser.add_argument("name", help="registered model name")
    export_parser.add_argument(
        "--out",
        default="-",
        metavar="FILE",
        help="destination path ('-' for stdout, the default)",
    )
    _add_models_dir(export_parser)

    eval_parser = commands.add_parser(
        "eval", help="evaluate a frozen model on a scenario (transfer evaluation)"
    )
    eval_parser.add_argument("name", help="registered model name")
    eval_parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="scenario to evaluate on (default: the model's training scenario)",
    )
    eval_parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario's default seed"
    )
    eval_parser.add_argument(
        "--policies",
        default=None,
        metavar="KINDS",
        help="comma-separated policy kinds to compare against "
        "(default: the scenario's own set; 'cohmeleon' always evaluates the model)",
    )
    _add_models_dir(eval_parser)
    _add_runner_flags(eval_parser)

    serve_parser = commands.add_parser(
        "serve", help="serve a registered model over JSON/HTTP (see repro.serving)"
    )
    serve_parser.add_argument("name", help="registered model name to serve")
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: an ephemeral port, printed at startup)",
    )
    serve_parser.add_argument(
        "--reload-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="hot-reload poll interval; 0 disables polling (default: %(default)s)",
    )
    _add_models_dir(serve_parser)
    return parser


def _make_runner(args: argparse.Namespace) -> SweepRunner:
    return SweepRunner(config=RunConfig.from_args(args))


def _load_scenario_target(name: str):
    if name.endswith((".toml", ".json")):
        from repro.scenarios.loader import load_scenario_file

        return load_scenario_file(name)
    from repro.scenarios.registry import get_scenario

    return get_scenario(name)


def _cmd_train(args: argparse.Namespace, out: TextIO) -> int:
    from repro.models.train import train_artifact

    scenario = _load_scenario_target(args.scenario)
    name = args.name if args.name is not None else scenario.name
    registry = ModelRegistry(args.models_dir)
    # Fail fast: an illegal name or a refused overwrite must surface
    # before the training run, not after it has burned the schedule.
    destination = registry.path_for(name)
    if destination.exists() and not args.force:
        raise ModelError(
            f"model {name!r} already exists at {destination}; pass --force to overwrite"
        )
    runner = _make_runner(args)
    started = time.perf_counter()
    run = train_artifact(
        scenario,
        name=name,
        seed=args.seed,
        training_iterations=args.training_iterations,
        runner=runner,
    )
    elapsed = time.perf_counter() - started
    path = registry.save(run.artifact, replace=args.force)
    provenance = run.artifact.provenance
    print(
        f"trained {name!r} on scenario {provenance['scenario']} "
        f"(seed {provenance['seed']}, "
        f"{provenance['training_iterations']} iterations)",
        file=out,
    )
    print(f"digest: {run.artifact.digest}", file=out)
    print(
        f"saved: {path} "
        f"(executed={run.executed} cache_hits={run.cache_hits} "
        f"elapsed={elapsed:.1f}s)",
        file=out,
    )
    return 0


def _cmd_list(args: argparse.Namespace, out: TextIO) -> int:
    registry = ModelRegistry(args.models_dir)
    artifacts = registry.load_all()
    if args.as_json:
        document = [
            {"name": a.name, "digest": a.digest, **a.provenance, **a.stats}
            for a in artifacts
        ]
        print(json.dumps(document, indent=2, sort_keys=True), file=out)
        return 0
    rows = [artifact.summary_row() for artifact in artifacts]
    print(
        format_table(
            ["model", "scenario", "seed", "iterations", "coverage", "digest"],
            rows,
            title=f"Registered models in {registry.root} ({len(rows)})",
        ),
        file=out,
    )
    return 0


def _cmd_describe(args: argparse.Namespace, out: TextIO) -> int:
    artifact = ModelRegistry(args.models_dir).load(args.name)
    description = {
        "name": artifact.name,
        "digest": artifact.digest,
        "source": artifact.source,
        "provenance": artifact.provenance,
        "stats": artifact.stats,
    }
    if args.as_json:
        print(json.dumps(description, indent=2, sort_keys=True), file=out)
        return 0
    print(f"{artifact.name} — trained on {artifact.scenario}", file=out)
    print(f"digest: {artifact.digest}", file=out)
    print(f"source: {artifact.source}", file=out)
    print(file=out)
    print(
        format_table(
            ["field", "value"],
            sorted((k, v) for k, v in artifact.provenance.items()),
            title="Provenance",
        ),
        file=out,
    )
    print(file=out)
    print(
        format_table(
            ["stat", "value"],
            sorted((k, v) for k, v in artifact.stats.items()),
            title="Training stats",
        ),
        file=out,
    )
    return 0


def _cmd_export(args: argparse.Namespace, out: TextIO) -> int:
    artifact = ModelRegistry(args.models_dir).load(args.name)
    text = artifact.dumps()
    if args.out == "-":
        print(text, file=out)
        return 0
    destination = Path(args.out)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(text + "\n")
    print(f"exported {artifact.name!r} ({artifact.digest[:12]}…) to {destination}", file=out)
    return 0


def _cmd_eval(args: argparse.Namespace, out: TextIO) -> int:
    from repro.scenarios.run import run_scenario

    artifact = ModelRegistry(args.models_dir).load(args.name)
    scenario_name = args.scenario if args.scenario is not None else artifact.scenario
    scenario = _load_scenario_target(scenario_name)
    policy_kinds: Optional[List[str]] = None
    if args.policies is not None:
        policy_kinds = [kind for kind in args.policies.split(",") if kind]
    elif "cohmeleon" not in scenario.policy_kinds:
        policy_kinds = list(scenario.policy_kinds) + ["cohmeleon"]
    runner = _make_runner(args)
    started = time.perf_counter()
    result = run_scenario(
        scenario,
        policy_kinds=policy_kinds,
        seed=args.seed,
        runner=runner,
        pretrained=artifact,
    )
    elapsed = time.perf_counter() - started
    transfer = (
        "" if scenario.name == artifact.scenario
        else f" (transfer from {artifact.scenario})"
    )
    print(f"evaluating model {artifact.name!r} on {scenario.name}{transfer}", file=out)
    print(result.report(), file=out)
    print(
        f"\n[models] model={artifact.name} digest={artifact.digest[:12]} "
        f"scenario={scenario.name} executed={result.executed} "
        f"cache_hits={result.cache_hits} elapsed={elapsed:.1f}s",
        file=out,
    )
    return 0


def _cmd_serve(args: argparse.Namespace, out: TextIO) -> int:
    from repro.serving.cli import run_serve

    return run_serve(
        args.name,
        models_dir=args.models_dir,
        host=args.host,
        port=args.port,
        reload_interval=args.reload_interval,
        out=out,
    )


_COMMANDS = {
    "train": _cmd_train,
    "list": _cmd_list,
    "describe": _cmd_describe,
    "export": _cmd_export,
    "eval": _cmd_eval,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
