"""Trained-policy persistence: artifacts, the model registry, and warm starts.

The paper's headline result is an *online-trained* Q-table that Cohmeleon
learns per platform — yet retraining it from scratch inside every sweep
job pays the training cost over and over and makes cross-platform
transfer studies impossible to express.  This package makes trained
policies first-class, persistent artifacts:

* :mod:`repro.models.artifact` — the versioned on-disk format: one
  canonical-JSON document wrapping the Q-table, the agent
  hyper-parameters, the reward weights, and the agent RNG stream, plus
  provenance (scenario, definition digest, seed, schedule, library
  version) and a SHA-256 digest gate over the whole payload;
* :mod:`repro.models.registry` — a directory of named artifacts
  (``.repro-models`` by default, ``REPRO_MODELS_DIR`` to relocate);
* :mod:`repro.models.train` — training through the PR 1 sweep runner, so
  repeated training runs hit the result cache;
* :mod:`repro.models.cli` — ``python -m repro.models
  train|list|describe|export|eval``.

The warm-start contract: ``python -m repro.scenarios run <scenario>
--pretrained <model>`` (or ``run_scenario(..., pretrained=artifact)``)
evaluates the frozen pretrained table instead of retraining, with the
artifact digest folded into the sweep-job fingerprint so the result
cache, manifests, and shard machinery stay bit-identical-correct.
Evaluating a model on a scenario other than the one it was trained on is
the cross-platform transfer study (``python -m repro.models eval <model>
--scenario <other>``); see ``docs/models.md``.

Quickstart
----------
>>> from repro.models import PolicyArtifact, ARTIFACT_FORMAT
>>> ARTIFACT_FORMAT
'cohmeleon-policy-artifact'
"""

from repro.models.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    PROVENANCE_FIELDS,
    PolicyArtifact,
    build_provenance,
    load_artifact,
    parse_artifact,
    payload_digest,
)
from repro.models.registry import (
    DEFAULT_MODELS_DIR,
    MODELS_DIR_ENV,
    ModelRegistry,
    default_models_dir,
    resolve_pretrained,
    validate_model_name,
)
from repro.models.train import TrainingRun, train_artifact
from repro.models.transfer import (
    MATRIX_FORMAT,
    MATRIX_VERSION,
    TransferCell,
    TransferMatrix,
    transfer_matrix,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "DEFAULT_MODELS_DIR",
    "MATRIX_FORMAT",
    "MATRIX_VERSION",
    "MODELS_DIR_ENV",
    "ModelRegistry",
    "PROVENANCE_FIELDS",
    "PolicyArtifact",
    "TrainingRun",
    "TransferCell",
    "TransferMatrix",
    "build_provenance",
    "default_models_dir",
    "load_artifact",
    "parse_artifact",
    "payload_digest",
    "resolve_pretrained",
    "train_artifact",
    "transfer_matrix",
    "validate_model_name",
]
