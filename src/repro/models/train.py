"""Train Cohmeleon policies into artifacts, through the sweep runner.

Training is dispatched as a single sweep job, so it inherits everything
the PR 1 runner provides: the on-disk result cache (retraining the same
scenario at the same seed and schedule is a cache hit, not a re-run), the
fingerprint-derived seeding contract, and process isolation.  The job's
parameters are primitives plus the scenario-definition digest, so its
fingerprint — and therefore the cached artifact payload — is stable
across interpreter restarts and sensitive to scenario content edits.

The trained state is captured exactly where the figure harnesses freeze
their policies (after :func:`~repro.experiments.common.train_policy` and
``freeze()``), including the agent RNG stream's position, so a frozen
evaluation of the saved artifact is bit-identical to an in-process
train-then-evaluate run of the same scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ModelError
from repro.experiments.common import make_standard_policies, train_policy
from repro.experiments.sweep import Job, SweepRunner, SweepSpec, run_spec
from repro.models.artifact import PolicyArtifact, build_provenance
from repro.scenarios.run import resolve_scenario, scenario_definition_digest
from repro.scenarios.scenario import Scenario


def _train_policy_job(params: Dict[str, object], rng) -> Dict[str, object]:
    """Sweep job: train one Cohmeleon policy and serialise its state.

    Mirrors the training half of the scenario evaluation path bit for bit
    (same policy seeding, same training application, same freeze point),
    so the artifact this job emits reproduces exactly what an in-process
    train-then-evaluate run would have evaluated.
    """
    scenario = resolve_scenario(
        str(params["scenario"]),
        params.get("source"),  # type: ignore[arg-type]
        params.get("generated"),  # type: ignore[arg-type]
    )
    seed = int(params["seed"])  # type: ignore[arg-type]
    iterations = int(params["training_iterations"])  # type: ignore[arg-type]
    setup = scenario.build_setup(seed=seed)
    training_app, _ = scenario.applications(setup, seed=seed)
    policy = make_standard_policies(["cohmeleon"], seed)["cohmeleon"]
    training_results = train_policy(setup, policy, training_app, iterations)
    policy.freeze()
    policy.clear_history()
    provenance = build_provenance(
        scenario=scenario.name,
        scenario_definition=str(params["definition"]),
        seed=seed,
        training_iterations=iterations,
        scenario_source=scenario.source,
    )
    # The name is stamped by the caller (it is registry metadata, not
    # trained content), so the same training run can be registered under
    # any name while hitting the same cache entry.
    artifact = PolicyArtifact.from_policy(policy, name="unnamed", provenance=provenance)
    return {
        "payload": artifact.payload,
        "digest": artifact.digest,
        "training": {
            "iterations": len(training_results),
            "execution_cycles": [
                result.total_execution_cycles for result in training_results
            ],
        },
    }


@dataclass
class TrainingRun:
    """Outcome of one artifact-training run through the sweep runner."""

    artifact: PolicyArtifact
    #: Whether the payload came from the result cache instead of training.
    cache_hits: int = 0
    executed: int = 0
    workers_used: int = 1
    #: Per-iteration execution cycles of the training application.
    training_cycles: tuple = ()


def train_artifact(
    scenario: Scenario,
    name: str,
    seed: Optional[int] = None,
    training_iterations: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> TrainingRun:
    """Train ``scenario``'s Cohmeleon policy and capture it as an artifact.

    Parameters
    ----------
    scenario:
        The scenario to train on (registered or loaded from a file).
    name:
        Registry name to stamp on the artifact.
    seed:
        Root seed; defaults to the scenario's ``default_seed``.
    training_iterations:
        Training schedule length; defaults to the scenario's budget.
    runner:
        A configured :class:`SweepRunner`; ``None`` trains serially
        without a cache.

    Returns
    -------
    TrainingRun
        The (unsaved) artifact plus sweep statistics; call
        :meth:`repro.models.ModelRegistry.save` to register it.
    """
    run_seed = scenario.default_seed if seed is None else seed
    iterations = (
        scenario.training_iterations
        if training_iterations is None
        else training_iterations
    )
    if iterations <= 0:
        raise ModelError(
            f"training an artifact needs at least one iteration, got {iterations}"
        )
    definition = scenario_definition_digest(scenario, seed=run_seed)
    params: Dict[str, object] = {
        "scenario": scenario.name,
        "source": scenario.source,
        "definition": definition,
        "policy_kind": "cohmeleon",
        "seed": run_seed,
        "training_iterations": iterations,
    }
    if scenario.source is None and "generated" in scenario.metadata:
        # Procedurally generated scenarios exist only in memory; forward
        # their (spec, index) identity so sweep workers can regenerate
        # them (see repro.scenarios.generate).
        params["generated"] = scenario.metadata["generated"]
    job = Job(
        key="train",
        fn=_train_policy_job,
        params=params,
        seed=run_seed,
    )
    outcome = run_spec(SweepSpec(name=f"train-{scenario.name}", jobs=[job]), runner)
    payload = outcome["train"]
    artifact = PolicyArtifact(name=name, payload=dict(payload["payload"]))  # type: ignore[arg-type]
    recorded = str(payload["digest"])
    if artifact.digest != recorded:
        raise ModelError(
            f"training payload digest mismatch: job recorded {recorded[:12]}…, "
            f"payload hashes to {artifact.digest[:12]}… (corrupt cache entry?)"
        )
    return TrainingRun(
        artifact=artifact,
        cache_hits=outcome.cache_hits,
        executed=outcome.executed,
        workers_used=outcome.workers_used,
        training_cycles=tuple(payload.get("training", {}).get("execution_cycles", ())),  # type: ignore[union-attr]
    )
