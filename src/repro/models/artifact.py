"""The versioned on-disk trained-policy artifact format.

An artifact is one canonical-JSON document wrapping everything needed to
re-instantiate a trained Cohmeleon policy and to audit where it came from:

.. code-block:: json

    {
      "format": "cohmeleon-policy-artifact",
      "version": 1,
      "name": "soc1-baseline",
      "digest": "<sha256 of the canonical payload>",
      "payload": {
        "policy":     {"kind": "cohmeleon", "agent_config": {...},
                       "reward_weights": {...}, "qtable": {...}, "rng": {...}},
        "provenance": {"scenario": "...", "scenario_definition": "...",
                       "seed": 0, "training_iterations": 3,
                       "repro_version": "..."},
        "stats":      {"coverage": 0.21, "updates": 1234, ...}
      }
    }

Three properties make the format safe to cache, ship, and fingerprint:

* **canonical** — the payload serialises with sorted keys and fixed
  separators, so the same trained policy always produces the same bytes
  and the same digest, on every platform;
* **digest-gated** — ``digest`` is the SHA-256 of the canonical payload;
  :func:`load_artifact` recomputes and compares it, so corruption,
  truncation, and tampering are all caught before a single Q-value is
  trusted (and sweep-job fingerprints embed the digest, so the result
  cache can never conflate two different tables);
* **versioned** — ``format``/``version`` reject documents written by an
  incompatible future layout instead of misreading them.

Every validation failure raises :class:`~repro.errors.ModelError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro import __version__
from repro.core.policies import CohmeleonPolicy
from repro.errors import ModelError
from repro.store.io import canonical_digest, canonical_text
from repro.utils.fileio import atomic_write_text, read_json_document

#: The ``format`` marker every artifact document carries.
ARTIFACT_FORMAT = "cohmeleon-policy-artifact"

#: The current (and only) artifact layout version.
ARTIFACT_VERSION = 1

#: Provenance fields every artifact records (see :func:`build_provenance`).
PROVENANCE_FIELDS = (
    "scenario",
    "scenario_definition",
    "scenario_source",
    "seed",
    "training_iterations",
    "policy_kind",
    "repro_version",
)


def payload_digest(payload: Dict[str, object]) -> str:
    """SHA-256 digest of the canonical rendering of an artifact payload.

    Delegates to :func:`repro.store.io.canonical_digest`, the one
    content-digest implementation shared by every format.
    """
    try:
        return canonical_digest(payload)
    except (TypeError, ValueError) as exc:
        raise ModelError(f"artifact payload is not JSON-serialisable: {exc}") from exc


def build_provenance(
    scenario: str,
    scenario_definition: str,
    seed: int,
    training_iterations: int,
    scenario_source: Optional[str] = None,
    policy_kind: str = "cohmeleon",
) -> Dict[str, object]:
    """Assemble the provenance block of an artifact payload.

    Provenance is deliberately deterministic — no wall-clock timestamps or
    hostnames — so training the same scenario at the same seed always
    yields a byte-identical artifact (and therefore the same digest).
    """
    return {
        "scenario": scenario,
        "scenario_definition": scenario_definition,
        "scenario_source": scenario_source,
        "seed": int(seed),
        "training_iterations": int(training_iterations),
        "policy_kind": policy_kind,
        "repro_version": __version__,
    }


@dataclass
class PolicyArtifact:
    """One trained-policy artifact: name, payload, digest, and origin."""

    #: Registry name (also the on-disk file stem).
    name: str
    #: The digest-covered document: ``policy`` + ``provenance`` + ``stats``.
    payload: Dict[str, object]
    #: SHA-256 of the canonical payload (computed when omitted).
    digest: str = ""
    #: Path the artifact was loaded from / last saved to, if any.
    source: Optional[str] = None
    #: Layout version of the document this artifact was read from.
    version: int = ARTIFACT_VERSION
    #: Non-digest-covered metadata (reserved for forward compatibility).
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("artifact name must be non-empty")
        if not self.digest:
            self.digest = payload_digest(self.payload)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_policy(
        cls,
        policy: CohmeleonPolicy,
        name: str,
        provenance: Dict[str, object],
    ) -> "PolicyArtifact":
        """Capture ``policy``'s learned state into a new artifact."""
        agent = policy.agent
        stats = {
            "coverage": agent.qtable.coverage(),
            "visited_states": len(agent.qtable.visited_states()),
            "updates": agent.updates,
            "decisions": agent.decisions,
            "random_decisions": agent.random_decisions,
        }
        payload = {
            "policy": policy.policy_state(),
            "provenance": dict(provenance),
            "stats": stats,
        }
        return cls(name=name, payload=payload)

    # ------------------------------------------------------------------
    # Structured access
    # ------------------------------------------------------------------
    @property
    def policy_state(self) -> Dict[str, object]:
        """The ``policy`` block (what :meth:`build_policy` consumes)."""
        return self._block("policy")

    @property
    def provenance(self) -> Dict[str, object]:
        """The ``provenance`` block (scenario, seed, schedule, version)."""
        return self._block("provenance")

    @property
    def stats(self) -> Dict[str, object]:
        """The ``stats`` block (coverage and training counters)."""
        return self._block("stats")

    def _block(self, key: str) -> Dict[str, object]:
        block = self.payload.get(key)
        if not isinstance(block, dict):
            raise ModelError(f"artifact {self.name!r} is missing its {key!r} block")
        return block

    @property
    def scenario(self) -> str:
        """Name of the scenario the policy was trained on."""
        return str(self.provenance.get("scenario", ""))

    def build_policy(self) -> CohmeleonPolicy:
        """Re-instantiate the trained policy, frozen, ready to evaluate."""
        from repro.errors import PolicyError

        try:
            return CohmeleonPolicy.from_artifact(self)
        except (KeyError, TypeError, ValueError, PolicyError) as exc:
            raise ModelError(
                f"artifact {self.name!r} does not hold a valid policy: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_document(self) -> Dict[str, object]:
        """The full artifact document (envelope + payload)."""
        return {
            "format": ARTIFACT_FORMAT,
            "version": self.version,
            "name": self.name,
            "digest": self.digest,
            "payload": self.payload,
        }

    def dumps(self) -> str:
        """Canonical JSON text of the full document."""
        return canonical_text(self.to_document())

    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact to ``path`` atomically; return the path."""
        target = atomic_write_text(path, self.dumps() + "\n")
        self.source = str(target)
        return target

    def summary_row(self) -> list:
        """The artifact's row for the ``list`` table."""
        provenance = self.provenance
        stats = self.stats
        return [
            self.name,
            provenance.get("scenario", "?"),
            provenance.get("seed", "?"),
            provenance.get("training_iterations", "?"),
            f"{float(stats.get('coverage', 0.0)):.3f}",
            self.digest[:12],
        ]


def parse_artifact(
    document: object,
    expected_digest: Optional[str] = None,
    source: Optional[str] = None,
) -> PolicyArtifact:
    """Validate a decoded artifact document and return the artifact.

    Checks, in order: the envelope shape, the format marker, the layout
    version, and finally the digest gate — the recorded digest must match
    both the recomputed payload digest and (when given) the caller's
    ``expected_digest``.
    """
    label = source if source is not None else "artifact"
    if not isinstance(document, dict):
        raise ModelError(f"{label}: artifact document must be a JSON object")
    for key in ("format", "version", "name", "digest", "payload"):
        if key not in document:
            raise ModelError(f"{label}: artifact is missing the {key!r} field")
    if document["format"] != ARTIFACT_FORMAT:
        raise ModelError(
            f"{label}: not a trained-policy artifact "
            f"(format {document['format']!r}, expected {ARTIFACT_FORMAT!r})"
        )
    try:
        version = int(document["version"])  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ModelError(f"{label}: artifact version is invalid: {exc}") from exc
    if version != ARTIFACT_VERSION:
        raise ModelError(
            f"{label}: artifact layout version {version} is not supported "
            f"(this build reads version {ARTIFACT_VERSION})"
        )
    payload = document["payload"]
    if not isinstance(payload, dict):
        raise ModelError(f"{label}: artifact payload must be a JSON object")
    recorded = str(document["digest"])
    actual = payload_digest(payload)
    if recorded != actual:
        raise ModelError(
            f"{label}: artifact digest mismatch — recorded {recorded[:12]}…, "
            f"payload hashes to {actual[:12]}… (corrupt or tampered artifact)"
        )
    if expected_digest is not None and recorded != expected_digest:
        raise ModelError(
            f"{label}: artifact digest {recorded[:12]}… does not match the "
            f"expected {expected_digest[:12]}… (wrong or regenerated artifact)"
        )
    return PolicyArtifact(
        name=str(document["name"]),
        payload=payload,
        digest=recorded,
        source=source,
        version=version,
    )


def load_artifact(
    path: Union[str, Path], expected_digest: Optional[str] = None
) -> PolicyArtifact:
    """Read, parse, and digest-verify the artifact stored at ``path``."""
    location = Path(path)
    try:
        document = read_json_document(location)
    except OSError as exc:
        raise ModelError(f"cannot read artifact {location}: {exc}") from exc
    except ValueError as exc:
        raise ModelError(
            f"{location}: artifact is not valid JSON (corrupt or truncated): {exc}"
        ) from exc
    return parse_artifact(document, expected_digest=expected_digest, source=str(location))
