"""Entry point for ``python -m repro.models``."""

import sys

from repro.models.cli import main

if __name__ == "__main__":
    sys.exit(main())
