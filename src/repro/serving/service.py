"""The policy-serving core: model lifecycle, decisions, what-ifs, stats.

:class:`PolicyService` is transport-agnostic — the asyncio HTTP layer
(:mod:`repro.serving.http`) is a thin adapter over it, and tests drive it
directly.  Three design points carry the serving contract:

* **Atomic model swaps.**  The currently served model lives in one
  :class:`ServedModel` value bound to a single attribute.  Handlers read
  that attribute exactly once per request, so every response is computed
  against one consistent ``(artifact, policy, digest, generation)`` tuple
  even while a hot reload replaces the attribute concurrently — a torn
  response (decisions from one table, digest from another) is impossible
  by construction.

* **Digest-gated hot reload.**  :meth:`PolicyService.check_reload` watches
  the registry file's ``(mtime_ns, size)`` signature; on change it
  re-loads through :meth:`~repro.models.ModelRegistry.load_retry` (which
  absorbs the write-commit race) and swaps only when the digest actually
  changed, bumping the model ``generation``.  A failed reload keeps the
  previous model serving and is retried on the next tick.

* **Bounded what-ifs.**  Scenario evaluations run through the standard
  sweep runner with an explicit per-phase event budget
  (``max_events``), so one simulation request can never hold the service
  hostage; budget exhaustion surfaces as a typed ``simulation-error``
  envelope.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.core.policies import CohmeleonPolicy
from repro.core.qtable import QTable
from repro.models.artifact import PolicyArtifact
from repro.models.registry import ModelRegistry
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    RequestError,
    parse_decide_request,
)

#: Default per-request event budget of a what-if evaluation.
DEFAULT_WHATIF_MAX_EVENTS = 250_000

#: Default maximum number of states in one decision batch.
DEFAULT_MAX_BATCH = 4096

#: Upper bucket bounds (milliseconds) of the latency histogram.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    float("inf"),
)


@dataclass(frozen=True)
class ServedModel:
    """One immutable snapshot of everything a request handler needs.

    Handlers grab the service's current snapshot once and use only it, so
    the ``digest``/``generation`` they stamp into the response always
    describe the exact Q-table that produced the decisions.
    """

    #: Registry name the snapshot was loaded under.
    name: str
    #: The digest-verified artifact document.
    artifact: PolicyArtifact
    #: The frozen policy rebuilt from the artifact.
    policy: CohmeleonPolicy
    #: The policy's Q-table (the decision hot path).
    qtable: QTable
    #: SHA-256 payload digest (provenance stamp of every response).
    digest: str
    #: Monotonic reload counter: 0 at startup, +1 per digest change.
    generation: int


class LatencyHistogram:
    """Fixed-bucket latency histogram with nearest-upper-bound percentiles."""

    def __init__(self, buckets_ms: Tuple[float, ...] = LATENCY_BUCKETS_MS) -> None:
        self.buckets_ms = buckets_ms
        self.counts = [0] * len(buckets_ms)
        self.total = 0
        self.sum_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one request latency (milliseconds)."""
        for index, upper in enumerate(self.buckets_ms):
            if latency_ms <= upper:
                self.counts[index] += 1
                break
        self.total += 1
        self.sum_ms += latency_ms

    def percentile(self, fraction: float) -> Optional[float]:
        """Upper bound of the bucket holding the ``fraction`` percentile.

        Returns ``None`` with no observations.  The estimate is
        conservative (a bucket upper bound, never an interpolation), which
        is the right direction for an SLO readout.
        """
        if self.total == 0:
            return None
        rank = max(1, int(fraction * self.total + 0.5))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.buckets_ms[index]
        return self.buckets_ms[-1]  # pragma: no cover - rank <= total

    def snapshot(self) -> Dict[str, object]:
        """JSON form for the ``/stats`` endpoint."""
        return {
            "count": self.total,
            "mean_ms": (self.sum_ms / self.total) if self.total else None,
            "p50_ms": self.percentile(0.50),
            "p99_ms": self.percentile(0.99),
            "buckets": [
                {"le_ms": upper, "count": count}
                for upper, count in zip(self.buckets_ms, self.counts)
                if count
            ],
        }


class ServingStats:
    """Thread-safe counters and histograms behind ``/stats``.

    What-if evaluations run on executor threads while decisions run on the
    event loop, so every mutation takes the internal lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}
        self.decisions_served = 0
        self.reloads = 0
        self.reload_errors = 0
        self.latency = LatencyHistogram()
        self.batch_sizes = LatencyHistogram(
            buckets_ms=(1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, float("inf"))
        )

    def record_request(self, endpoint: str, latency_ms: float) -> None:
        """Count one handled request and its latency."""
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
            self.latency.observe(latency_ms)

    def record_error(self, error_type: str) -> None:
        """Count one error envelope by type."""
        with self._lock:
            self.errors[error_type] = self.errors.get(error_type, 0) + 1

    def record_decisions(self, batch_size: int) -> None:
        """Count served decisions and the batch size that carried them."""
        with self._lock:
            self.decisions_served += batch_size
            self.batch_sizes.observe(float(batch_size))

    def record_reload(self) -> None:
        """Count one successful hot reload (digest change observed)."""
        with self._lock:
            self.reloads += 1

    def record_reload_error(self) -> None:
        """Count one failed reload attempt (previous model kept serving)."""
        with self._lock:
            self.reload_errors += 1

    def snapshot(self) -> Dict[str, object]:
        """JSON form for the ``/stats`` endpoint."""
        with self._lock:
            return {
                "uptime_s": time.monotonic() - self.started,
                "requests": dict(self.requests),
                "errors": dict(self.errors),
                "decisions_served": self.decisions_served,
                "reloads": self.reloads,
                "reload_errors": self.reload_errors,
                "latency": self.latency.snapshot(),
                "batch_sizes": self.batch_sizes.snapshot(),
            }


class PolicyService:
    """Serves decisions and what-ifs from one hot-reloadable model."""

    def __init__(
        self,
        registry: ModelRegistry,
        model_name: str,
        whatif_max_events: int = DEFAULT_WHATIF_MAX_EVENTS,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        self.registry = registry
        self.model_name = model_name
        self.whatif_max_events = int(whatif_max_events)
        self.max_batch = int(max_batch)
        self.stats = ServingStats()
        self._reload_lock = threading.Lock()
        # Stat before load: if the file changes in between, the stale
        # signature makes the next check_reload() re-read (and find the
        # same digest, a no-op) instead of missing the change.
        self._signature = self._stat_signature()
        self._model = self._load_model(generation=0)

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------
    @property
    def model(self) -> ServedModel:
        """The current model snapshot (one atomic attribute read)."""
        return self._model

    def _stat_signature(self) -> Optional[Tuple[int, int]]:
        """Change signature of the registry file (``None`` when absent)."""
        try:
            stat = self.registry.path_for(self.model_name).stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def _load_model(self, generation: int) -> ServedModel:
        """Load, digest-verify, and freeze one model snapshot."""
        artifact = self.registry.load_retry(self.model_name)
        policy = artifact.build_policy()
        return ServedModel(
            name=self.model_name,
            artifact=artifact,
            policy=policy,
            qtable=policy.agent.qtable,
            digest=artifact.digest,
            generation=generation,
        )

    def check_reload(self) -> bool:
        """Reload the model if the registry file changed; return whether.

        The swap is a single attribute assignment of a fully constructed
        :class:`ServedModel`, so concurrent requests see either the old
        snapshot or the new one, never an intermediate.  A failed load
        counts a reload error, keeps the previous model serving, leaves
        the stored signature untouched (so the next tick retries), and
        re-raises.
        """
        with self._reload_lock:
            signature = self._stat_signature()
            if signature == self._signature:
                return False
            try:
                # Same stat-before-load ordering as __init__.
                current = self._model
                candidate = self._load_model(generation=current.generation + 1)
            except Exception:
                self.stats.record_reload_error()
                raise
            self._signature = signature
            if candidate.digest == current.digest:
                return False
            self._model = candidate
            self.stats.record_reload()
            return True

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def _provenance(self, model: ServedModel) -> Dict[str, object]:
        """The provenance fields every response envelope carries."""
        return {
            "model": model.name,
            "digest": model.digest,
            "generation": model.generation,
            "repro_version": __version__,
            "protocol": PROTOCOL_VERSION,
        }

    def healthz(self) -> Dict[str, object]:
        """The ``/healthz`` document: liveness plus model identity."""
        model = self._model
        document = self._provenance(model)
        document.update(
            {
                "status": "ok",
                "scenario": model.artifact.scenario,
                "uptime_s": time.monotonic() - self.stats.started,
            }
        )
        return document

    def stats_snapshot(self) -> Dict[str, object]:
        """The ``/stats`` document: counters, histograms, model identity."""
        model = self._model
        document = self._provenance(model)
        document.update(self.stats.snapshot())
        return document

    def decide(self, document: object) -> Dict[str, object]:
        """Answer a single or batched decision request.

        The whole batch is dispatched through one
        :meth:`~repro.core.qtable.QTable.best_modes` call against one
        model snapshot, so the response's decisions and digest are
        consistent by construction and bit-identical to an offline
        evaluation of the same table.
        """
        model = self._model
        indices, single = parse_decide_request(document, self.max_batch)
        labels = [mode.label for mode in model.qtable.best_modes(indices)]
        response = self._provenance(model)
        response.update({"decisions": labels, "count": len(labels)})
        if single:
            response["decision"] = labels[0]
        self.stats.record_decisions(len(labels))
        return response

    def whatif(self, document: object) -> Dict[str, object]:
        """Run one bounded what-if scenario evaluation.

        The request names a **registered** scenario (never a file path —
        the server does not read caller-chosen files) and optionally the
        policy kinds to compare, a seed, a training budget, and an event
        budget; the effective event budget is capped at the server's
        ``whatif_max_events``.  When ``cohmeleon`` is among the policies
        it evaluates the captured model snapshot's frozen table, so the
        what-if answers "how would *this served model* do".
        """
        from repro.experiments.common import STANDARD_POLICY_KINDS
        from repro.scenarios.registry import discover, get_scenario, scenario_names
        from repro.scenarios.run import run_scenario

        model = self._model
        if not isinstance(document, dict):
            raise RequestError("invalid-request", "request body must be a JSON object")
        unknown = set(document) - {
            "scenario",
            "policies",
            "seed",
            "training_iterations",
            "max_events",
        }
        if unknown:
            raise RequestError(
                "invalid-request", f"unknown what-if fields: {sorted(unknown)}"
            )
        name = document.get("scenario")
        if not isinstance(name, str) or not name:
            raise RequestError("invalid-request", "'scenario' must be a scenario name")
        discover()
        if name not in scenario_names():
            raise RequestError(
                "not-found",
                f"no registered scenario named {name!r} "
                f"(available: {', '.join(scenario_names()) or 'none'})",
            )
        scenario = get_scenario(name)

        kinds = document.get("policies", ["cohmeleon"])
        if (
            not isinstance(kinds, list)
            or not kinds
            or not all(isinstance(kind, str) for kind in kinds)
        ):
            raise RequestError(
                "invalid-request", "'policies' must be a non-empty array of kinds"
            )
        bad = [kind for kind in kinds if kind not in STANDARD_POLICY_KINDS]
        if bad:
            raise RequestError(
                "invalid-request",
                f"unknown policy kinds {bad} "
                f"(available: {', '.join(STANDARD_POLICY_KINDS)})",
            )

        seed = _optional_int(document, "seed", minimum=0)
        iterations = _optional_int(document, "training_iterations", minimum=0)
        requested = _optional_int(document, "max_events", minimum=1)
        budget = self.whatif_max_events
        if requested is not None:
            budget = min(requested, budget)

        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory(prefix="repro-whatif-") as scratch:
            pretrained: Optional[PolicyArtifact] = None
            if "cohmeleon" in kinds:
                # Snapshot the captured artifact to a private path: sweep
                # jobs re-load the pretrained artifact from disk and
                # digest-verify it, so pointing them at the live registry
                # file would tear the moment a hot reload swaps it
                # mid-simulation.  The scratch copy pins the evaluation to
                # the model this request captured.
                pretrained = PolicyArtifact(
                    name=model.artifact.name,
                    payload=model.artifact.payload,
                    digest=model.digest,
                )
                pretrained.save(Path(scratch) / "pretrained.json")
            result = run_scenario(
                scenario,
                policy_kinds=kinds,
                seed=seed,
                training_iterations=iterations,
                pretrained=pretrained,
                max_events=budget,
            )
        normalized = result.normalized()
        policies: Dict[str, object] = {}
        for kind, evaluation in result.evaluations.items():
            policies[kind] = {
                "execution_cycles": evaluation.result.total_execution_cycles,
                "ddr_accesses": evaluation.result.total_ddr_accesses,
                "norm_exec": normalized[kind]["exec"],
                "norm_mem": normalized[kind]["mem"],
            }
        response = self._provenance(model)
        response.update(
            {
                "scenario": name,
                "seed": result.seed,
                "reference_policy": result.reference_policy,
                "max_events": budget,
                "pretrained_digest": result.pretrained_digest,
                "policies": policies,
            }
        )
        return response


def _optional_int(
    document: Dict[str, object], key: str, minimum: int
) -> Optional[int]:
    """Read an optional non-negative integer field of a request body."""
    value = document.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
        raise RequestError(
            "invalid-request", f"{key!r} must be an integer >= {minimum}, got {value!r}"
        )
    return value
