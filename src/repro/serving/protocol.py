"""The JSON wire protocol of the policy-serving service.

Everything that crosses the wire is one JSON document per request and one
per response.  This module owns the request-side validation (state
parsing, batch limits) and the **typed error envelope** every failure maps
to::

    {"error": {"type": "invalid-request", "status": 400, "message": "..."}}

Error types are a closed set (:data:`ERROR_STATUS`); handlers never leak a
traceback over the wire — an unexpected exception becomes an opaque
``internal-error`` envelope while the details stay in the server process.

A *state* in a decision request may be written three equivalent ways:

* the base-3 **index** of the discretised state (``0 <= index < 243``);
* a 5-element **list** of attribute levels, in paper Table 3 order;
* a **mapping** with exactly the five attribute names
  (:data:`STATE_ATTRIBUTES`), each in ``{0, 1, 2}``.

All three resolve to the same Q-table row via
:class:`repro.core.state.CoherenceState`, so clients can send whatever
they have without pre-encoding.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.state import NUM_STATES, CoherenceState
from repro.errors import PolicyError, ServingError
from repro.net.envelope import EnvelopeError, make_envelope

#: Protocol version stamped into every response envelope.
PROTOCOL_VERSION = 1

#: The closed set of error-envelope types and their HTTP status codes.
ERROR_STATUS: Dict[str, int] = {
    "invalid-request": 400,
    "not-found": 404,
    "model-error": 409,
    "payload-too-large": 413,
    "simulation-error": 422,
    "internal-error": 500,
}

#: Attribute names of a state mapping, in paper Table 3 order.
STATE_ATTRIBUTES: Tuple[str, ...] = (
    "fully_coh_acc",
    "non_coh_acc_per_tile",
    "to_llc_per_tile",
    "tile_footprint",
    "acc_footprint",
)


class RequestError(EnvelopeError, ServingError):
    """A request that failed validation or execution, with a typed envelope."""

    #: The serving vocabulary; see :data:`ERROR_STATUS`.
    vocabulary = ERROR_STATUS

    #: Unknown envelope types are a serving-side bug.
    unknown_error = ServingError


def error_envelope(error_type: str, message: str) -> Dict[str, object]:
    """Build the JSON error envelope for ``error_type``."""
    return make_envelope(ERROR_STATUS, error_type, message, ServingError)


def envelope_for_exception(exc: BaseException) -> Tuple[int, Dict[str, object]]:
    """Map an exception to ``(status, envelope)``; never leaks a traceback.

    :class:`RequestError` carries its own type; the library's domain
    errors map onto the closed envelope set (a corrupt or mid-swap model
    is ``model-error``, an exhausted what-if budget is
    ``simulation-error``, every other :class:`~repro.errors.ReproError` is
    the caller's fault and maps to ``invalid-request``).  Anything else is
    a bug — the client gets an opaque ``internal-error`` naming only the
    exception class, never its message or stack.
    """
    from repro.errors import ModelError, ReproError, SimulationError

    if isinstance(exc, RequestError):
        return exc.status, error_envelope(exc.error_type, str(exc))
    if isinstance(exc, ModelError):
        return ERROR_STATUS["model-error"], error_envelope("model-error", str(exc))
    if isinstance(exc, SimulationError):
        return (
            ERROR_STATUS["simulation-error"],
            error_envelope("simulation-error", str(exc)),
        )
    if isinstance(exc, ReproError):
        return (
            ERROR_STATUS["invalid-request"],
            error_envelope("invalid-request", str(exc)),
        )
    return (
        ERROR_STATUS["internal-error"],
        error_envelope(
            "internal-error",
            f"internal server error ({type(exc).__name__})",
        ),
    )


def parse_state(value: object) -> int:
    """Resolve one wire-format state to its Q-table row index."""
    if isinstance(value, bool):
        raise RequestError("invalid-request", f"state {value!r} is not a state")
    if isinstance(value, int):
        if not 0 <= value < NUM_STATES:
            raise RequestError(
                "invalid-request",
                f"state index {value} out of range [0, {NUM_STATES})",
            )
        return value
    if isinstance(value, (list, tuple)):
        if len(value) != len(STATE_ATTRIBUTES) or not all(
            isinstance(level, int) and not isinstance(level, bool) for level in value
        ):
            raise RequestError(
                "invalid-request",
                f"a state list needs exactly {len(STATE_ATTRIBUTES)} integer "
                f"attribute levels, got {value!r}",
            )
        try:
            return CoherenceState(*value).index
        except PolicyError as exc:
            raise RequestError("invalid-request", str(exc)) from exc
    if isinstance(value, dict):
        if set(value) != set(STATE_ATTRIBUTES):
            raise RequestError(
                "invalid-request",
                "a state mapping needs exactly the attributes "
                f"{list(STATE_ATTRIBUTES)}, got {sorted(value)}",
            )
        levels = [value[name] for name in STATE_ATTRIBUTES]
        return parse_state(levels)
    raise RequestError(
        "invalid-request",
        f"cannot interpret {value!r} as a state (use an index, a "
        f"{len(STATE_ATTRIBUTES)}-element level list, or an attribute mapping)",
    )


def parse_decide_request(
    document: object, max_batch: int
) -> Tuple[List[int], bool]:
    """Validate a decision request; return ``(state_indices, is_single)``.

    A request carries either ``state`` (one state; the response echoes a
    single ``decision``) or ``states`` (a batch, up to ``max_batch``; the
    response carries ``decisions`` in request order) — never both.
    """
    if not isinstance(document, dict):
        raise RequestError("invalid-request", "request body must be a JSON object")
    has_single = "state" in document
    has_batch = "states" in document
    if has_single == has_batch:
        raise RequestError(
            "invalid-request",
            "a decision request carries exactly one of 'state' or 'states'",
        )
    if has_single:
        return [parse_state(document["state"])], True
    states = document["states"]
    if not isinstance(states, Sequence) or isinstance(states, (str, bytes)):
        raise RequestError("invalid-request", "'states' must be an array of states")
    if len(states) > max_batch:
        raise RequestError(
            "invalid-request",
            f"batch of {len(states)} states exceeds the server's limit of "
            f"{max_batch}; split the request",
        )
    return [parse_state(state) for state in states], False
