"""Asyncio HTTP/1.1 transport for the policy-serving service.

Deliberately framework-free: :class:`ServingServer` sits directly on
``asyncio.start_server`` with a small hand-rolled HTTP/1.1 request parser
(request line, headers, ``Content-Length`` body, keep-alive), because the
protocol surface is five routes exchanging single JSON documents and a
framework would be the only third-party dependency in the repository.

Concurrency model:

* **Decisions, health, stats, reloads** run inline on the event loop —
  they are sub-millisecond dictionary/numpy work, and running every
  reload check on the loop serialises them against each other and against
  decision handling without any locking.
* **What-if simulations** are the one genuinely slow request class; they
  are pushed to a small thread pool so a simulation never stalls the
  decision hot path.  The handler captures the model snapshot before
  dispatch, so a hot reload mid-simulation cannot tear the response.
* A background task polls :meth:`PolicyService.check_reload` every
  ``reload_interval`` seconds; reload failures are counted in the stats
  and the previous model keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.errors import ServingError
from repro.serving.protocol import (
    RequestError,
    envelope_for_exception,
    error_envelope,
)
from repro.serving.service import PolicyService

#: Largest accepted request body (bytes); larger bodies get a 413 envelope.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest accepted request head (request line + headers, bytes).
MAX_HEAD_BYTES = 64 * 1024

_STATUS_REASON = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


class ServingServer:
    """One asyncio HTTP server wrapping a :class:`PolicyService`.

    Routes::

        GET  /healthz     liveness + served-model identity
        GET  /stats       counters, latency/batch histograms
        POST /v1/decide   single or batched coherence-mode decisions
        POST /v1/whatif   bounded scenario evaluation
        POST /v1/reload   force one hot-reload check now

    Use as an async context manager (``async with ServingServer(...)``) or
    call :meth:`start`/:meth:`close` explicitly.
    """

    def __init__(
        self,
        service: PolicyService,
        host: str = "127.0.0.1",
        port: int = 0,
        reload_interval: float = 1.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.reload_interval = float(reload_interval)
        self._server: Optional[asyncio.AbstractServer] = None
        self._reload_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the reload loop."""
        if self._server is not None:
            raise ServingError("server is already running")
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-whatif"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.reload_interval > 0:
            self._reload_task = asyncio.ensure_future(self._reload_loop())

    async def close(self) -> None:
        """Stop accepting, cancel the reload loop, drain the executor."""
        if self._reload_task is not None:
            self._reload_task.cancel()
            try:
                await self._reload_task
            except asyncio.CancelledError:
                pass
            self._reload_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit in a blocked read; cancel them so
        # no handler task outlives the server (and trips the event loop's
        # "task was destroyed" teardown noise).
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "ServingServer":
        """Start the server on entry."""
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        """Close the server on exit."""
        await self.close()

    @property
    def started(self) -> bool:
        """Whether the listening socket is currently bound."""
        return self._server is not None

    @property
    def url(self) -> str:
        """Base URL of the bound listening socket."""
        return f"http://{self.host}:{self.port}"

    async def _reload_loop(self) -> None:
        """Poll for registry changes; failures keep the old model serving."""
        while True:
            await asyncio.sleep(self.reload_interval)
            try:
                self.service.check_reload()
            except Exception:
                # Already counted by check_reload (reload_errors); the
                # previous snapshot keeps serving and the next tick retries.
                continue

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve keep-alive requests on one connection until EOF."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except RequestError as exc:
                    # Framing errors (bad request line, oversized body):
                    # answer with the typed envelope, then drop the
                    # connection — the stream position is unrecoverable.
                    self.service.stats.record_error(exc.error_type)
                    await self._write_response(
                        writer,
                        exc.status,
                        error_envelope(exc.error_type, str(exc)),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, document = await self._dispatch(method, path, body)
                await self._write_response(writer, status, document, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler; close and swallow —
            # re-raising out of the streams callback is logged as noise.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """Parse one request; ``None`` on a clean EOF between requests."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        except asyncio.LimitOverrunError as exc:
            raise RequestError(
                "payload-too-large", "request head exceeds the server limit"
            ) from exc
        if len(head) > MAX_HEAD_BYTES:
            raise RequestError(
                "payload-too-large", "request head exceeds the server limit"
            )
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise RequestError("invalid-request", f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise RequestError(
                "invalid-request", f"invalid Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise RequestError("invalid-request", f"invalid Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise RequestError(
                "payload-too-large",
                f"request body of {length} bytes exceeds the server limit "
                f"of {MAX_BODY_BYTES}",
            )
        body = await reader.readexactly(length) if length else b""
        # Strip any query string: the protocol carries everything in JSON.
        path = target.split("?", 1)[0]
        return method.upper(), path, body, keep_alive

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        """Route one request and map every failure to a typed envelope."""
        start = time.perf_counter()
        try:
            status, document = await self._route(method, path, body)
        except Exception as exc:  # noqa: BLE001 - boundary: everything becomes JSON
            status, document = envelope_for_exception(exc)
            error = document.get("error")
            if isinstance(error, dict):
                self.service.stats.record_error(str(error.get("type")))
        self.service.stats.record_request(
            f"{method} {path}", (time.perf_counter() - start) * 1000.0
        )
        return status, document

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        """The route table proper (exceptions handled by ``_dispatch``)."""
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, self.service.healthz()
        if path == "/stats":
            self._require(method, "GET", path)
            return 200, self.service.stats_snapshot()
        if path == "/v1/decide":
            self._require(method, "POST", path)
            return 200, self.service.decide(_parse_body(body))
        if path == "/v1/whatif":
            self._require(method, "POST", path)
            document = _parse_body(body)
            loop = asyncio.get_event_loop()
            if self._executor is None:
                raise ServingError("server is not running")
            # The service captures its model snapshot inside whatif(), so
            # a hot reload during the simulation cannot tear the response.
            result = await loop.run_in_executor(
                self._executor, self.service.whatif, document
            )
            return 200, result
        if path == "/v1/reload":
            self._require(method, "POST", path)
            reloaded = self.service.check_reload()
            model = self.service.model
            return 200, {
                "reloaded": reloaded,
                "digest": model.digest,
                "generation": model.generation,
            }
        raise RequestError("not-found", f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        """Reject a request whose method does not match the route."""
        if method != expected:
            raise RequestError(
                "invalid-request", f"{path} expects {expected}, got {method}"
            )

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: Dict[str, object],
        keep_alive: bool,
    ) -> None:
        """Serialise one JSON response with standard framing headers."""
        payload = json.dumps(document, sort_keys=True).encode("utf-8")
        reason = _STATUS_REASON.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


def _parse_body(body: bytes) -> object:
    """Decode a request body as one JSON document."""
    if not body:
        raise RequestError("invalid-request", "request body must be a JSON document")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RequestError(
            "invalid-request", f"request body is not valid JSON: {exc}"
        ) from exc


async def serve_forever(server: ServingServer) -> None:
    """Run ``server`` until cancelled (the CLI entry point's main loop).

    Starts the server only if it is not already running — the CLI starts
    it eagerly so the banner can print the resolved ephemeral port — and
    closes it on the way out.
    """
    if not server.started:
        await server.start()
    try:
        while True:
            await asyncio.sleep(3600)
    finally:
        await server.close()


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEAD_BYTES",
    "ServingServer",
    "serve_forever",
]
