"""Asyncio HTTP/1.1 transport for the policy-serving service.

:class:`ServingServer` is a :class:`repro.net.http.JsonHttpServer` — the
shared keep-alive HTTP/1.1 transport — wrapping a
:class:`~repro.serving.service.PolicyService`.  Everything that frames
bytes on the socket (request parsing, body caps, connection teardown,
JSON responses) lives in :mod:`repro.net`; this module owns the route
table and the serving-specific lifecycle.

Concurrency model:

* **Decisions, health, stats, reloads** run inline on the event loop —
  they are sub-millisecond dictionary/numpy work, and running every
  reload check on the loop serialises them against each other and against
  decision handling without any locking.
* **What-if simulations** are the one genuinely slow request class; they
  are pushed to a small thread pool so a simulation never stalls the
  decision hot path.  The handler captures the model snapshot before
  dispatch, so a hot reload mid-simulation cannot tear the response.
* A background task polls :meth:`PolicyService.check_reload` every
  ``reload_interval`` seconds; reload failures are counted in the stats
  and the previous model keeps serving.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.errors import ServingError
from repro.net.envelope import EnvelopeError
from repro.net.http import JsonHttpServer
from repro.serving.protocol import RequestError, envelope_for_exception
from repro.serving.service import PolicyService

#: Largest accepted request body (bytes); larger bodies get a 413 envelope.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest accepted request head (request line + headers, bytes).
MAX_HEAD_BYTES = 64 * 1024


class ServingServer(JsonHttpServer):
    """One asyncio HTTP server wrapping a :class:`PolicyService`.

    Routes::

        GET  /healthz     liveness + served-model identity
        GET  /stats       counters, latency/batch histograms
        POST /v1/decide   single or batched coherence-mode decisions
        POST /v1/whatif   bounded scenario evaluation
        POST /v1/reload   force one hot-reload check now

    Use as an async context manager (``async with ServingServer(...)``) or
    call :meth:`start`/:meth:`close` explicitly.
    """

    def __init__(
        self,
        service: PolicyService,
        host: str = "127.0.0.1",
        port: int = 0,
        reload_interval: float = 1.0,
    ) -> None:
        super().__init__(
            max_body_bytes=MAX_BODY_BYTES,
            max_head_bytes=MAX_HEAD_BYTES,
            wire_error=RequestError,
        )
        self.service = service
        self.host = host
        self.port = port
        self.reload_interval = float(reload_interval)
        self._server: Optional[asyncio.AbstractServer] = None
        self._reload_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the reload loop."""
        if self._server is not None:
            raise ServingError("server is already running")
        self._executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-whatif"
        )
        self._server = await asyncio.start_server(
            self.handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.reload_interval > 0:
            self._reload_task = asyncio.ensure_future(self._reload_loop())

    async def close(self) -> None:
        """Stop accepting, cancel the reload loop, drain the executor."""
        if self._reload_task is not None:
            self._reload_task.cancel()
            try:
                await self._reload_task
            except asyncio.CancelledError:
                pass
            self._reload_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.cancel_connections()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "ServingServer":
        """Start the server on entry."""
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        """Close the server on exit."""
        await self.close()

    @property
    def started(self) -> bool:
        """Whether the listening socket is currently bound."""
        return self._server is not None

    @property
    def url(self) -> str:
        """Base URL of the bound listening socket."""
        return f"http://{self.host}:{self.port}"

    async def _reload_loop(self) -> None:
        """Poll for registry changes; failures keep the old model serving."""
        while True:
            await asyncio.sleep(self.reload_interval)
            try:
                self.service.check_reload()
            except Exception:
                # Already counted by check_reload (reload_errors); the
                # previous snapshot keeps serving and the next tick retries.
                continue

    # ------------------------------------------------------------------
    # Routing (transport plumbing lives in repro.net.http)
    # ------------------------------------------------------------------
    def healthz_document(self) -> Dict[str, object]:
        """Liveness + served-model identity for ``/healthz``."""
        return self.service.healthz()

    def on_framing_error(self, exc: EnvelopeError) -> None:
        """Count framing failures in the serving stats."""
        self.service.stats.record_error(exc.error_type)

    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        """Route one request and map every failure to a typed envelope."""
        start = time.perf_counter()
        try:
            status, document = await self._route(method, path, body)
        except Exception as exc:  # noqa: BLE001 - boundary: everything becomes JSON
            status, document = envelope_for_exception(exc)
            error = document.get("error")
            if isinstance(error, dict):
                self.service.stats.record_error(str(error.get("type")))
        self.service.stats.record_request(
            f"{method} {path}", (time.perf_counter() - start) * 1000.0
        )
        return status, document

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        """The route table proper (exceptions handled by ``dispatch``)."""
        builtin = self.route_builtin(method, path)
        if builtin is not None:
            return builtin
        if path == "/stats":
            self.require_method(method, "GET", path)
            return 200, self.service.stats_snapshot()
        if path == "/v1/decide":
            self.require_method(method, "POST", path)
            return 200, self.service.decide(self.parse_json_body(body))
        if path == "/v1/whatif":
            self.require_method(method, "POST", path)
            document = self.parse_json_body(body)
            loop = asyncio.get_event_loop()
            if self._executor is None:
                raise ServingError("server is not running")
            # The service captures its model snapshot inside whatif(), so
            # a hot reload during the simulation cannot tear the response.
            result = await loop.run_in_executor(
                self._executor, self.service.whatif, document
            )
            return 200, result
        if path == "/v1/reload":
            self.require_method(method, "POST", path)
            reloaded = self.service.check_reload()
            model = self.service.model
            return 200, {
                "reloaded": reloaded,
                "digest": model.digest,
                "generation": model.generation,
            }
        raise RequestError("not-found", f"no route for {path!r}")


async def serve_forever(server: ServingServer) -> None:
    """Run ``server`` until cancelled (the CLI entry point's main loop).

    Starts the server only if it is not already running — the CLI starts
    it eagerly so the banner can print the resolved ephemeral port — and
    closes it on the way out.
    """
    if not server.started:
        await server.start()
    try:
        while True:
            await asyncio.sleep(3600)
    finally:
        await server.close()


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEAD_BYTES",
    "ServingServer",
    "serve_forever",
]
