"""Deterministic load generation and SLO checking for the serving stack.

:func:`run_load` drives a running server with ``clients`` concurrent
keep-alive connections, each issuing ``requests`` batched decision calls
whose state streams come from :class:`~repro.utils.rng.SeededRNG` (seeded
per client via :func:`~repro.utils.rng.derive_seed`), so two runs against
the same model ask for exactly the same decisions.  Latencies are kept
exactly (one ``perf_counter`` pair per request) and reduced to
nearest-rank percentiles; throughput is total decisions over wall-clock.

:func:`check_slo` compares a :class:`LoadReport` against the SLO block
committed next to the serving benchmark baseline
(``benchmarks/results/BENCH_serving.json``), returning the list of
violations — the CI serving job fails when that list is non-empty.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.state import NUM_STATES
from repro.errors import ServingError
from repro.serving.client import ServingClient
from repro.utils.host import host_metadata
from repro.utils.rng import SeededRNG, derive_seed

#: SLO keys :func:`check_slo` understands, with their comparison sense.
SLO_KEYS = ("p99_ms_max", "p50_ms_max", "decisions_per_s_min", "errors_max")


@dataclass
class LoadReport:
    """Everything one load run measured."""

    clients: int
    requests_per_client: int
    batch: int
    seed: int
    #: Total decisions served across all clients.
    decisions: int
    #: Wall-clock duration of the whole run (seconds).
    duration_s: float
    #: Decisions per second over the wall clock.
    decisions_per_s: float
    #: Nearest-rank latency percentiles (milliseconds).
    latency_ms: Dict[str, float]
    #: Every distinct model digest observed in responses.
    digests: List[str] = field(default_factory=list)
    #: Non-200 responses (count by status code).
    errors: Dict[str, int] = field(default_factory=dict)

    @property
    def error_count(self) -> int:
        """Total non-200 responses across the run."""
        return sum(self.errors.values())

    def to_dict(self) -> Dict[str, object]:
        """JSON form (what the CI job uploads as the latency report)."""
        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "batch": self.batch,
            "seed": self.seed,
            "decisions": self.decisions,
            "duration_s": self.duration_s,
            "decisions_per_s": self.decisions_per_s,
            "latency_ms": dict(self.latency_ms),
            "digests": list(self.digests),
            "errors": dict(self.errors),
            "host": host_metadata(),
        }


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of pre-sorted ``sorted_values``."""
    if not sorted_values:
        raise ServingError("no latencies recorded")
    rank = max(1, int(round(fraction * len(sorted_values))))
    return sorted_values[min(rank, len(sorted_values)) - 1]


async def _client_worker(
    host: str,
    port: int,
    client_index: int,
    requests: int,
    batch: int,
    seed: int,
    latencies_ms: List[float],
    digests: Dict[str, int],
    errors: Dict[str, int],
) -> int:
    """One load client: seeded state stream, exact per-request latency."""
    rng = SeededRNG(derive_seed(seed, "serving-load", str(client_index)))
    decisions = 0
    async with ServingClient(host, port) as client:
        for _ in range(requests):
            states = [rng.randint(0, NUM_STATES - 1) for _ in range(batch)]
            start = time.perf_counter()
            status, document = await client.decide(states)
            latencies_ms.append((time.perf_counter() - start) * 1000.0)
            if status != 200:
                errors[str(status)] = errors.get(str(status), 0) + 1
                continue
            digest = str(document.get("digest"))
            digests[digest] = digests.get(digest, 0) + 1
            decisions += int(document.get("count", 0))
    return decisions


async def run_load_async(
    host: str,
    port: int,
    clients: int = 8,
    requests: int = 50,
    batch: int = 64,
    seed: int = 17,
) -> LoadReport:
    """Run the load test against ``host:port``; return the report."""
    latencies_ms: List[float] = []
    digests: Dict[str, int] = {}
    errors: Dict[str, int] = {}
    start = time.perf_counter()
    totals = await asyncio.gather(
        *(
            _client_worker(
                host, port, index, requests, batch, seed, latencies_ms, digests, errors
            )
            for index in range(clients)
        )
    )
    duration_s = time.perf_counter() - start
    ordered = sorted(latencies_ms)
    decisions = sum(totals)
    return LoadReport(
        clients=clients,
        requests_per_client=requests,
        batch=batch,
        seed=seed,
        decisions=decisions,
        duration_s=duration_s,
        decisions_per_s=decisions / duration_s if duration_s > 0 else 0.0,
        latency_ms={
            "p50": _percentile(ordered, 0.50),
            "p90": _percentile(ordered, 0.90),
            "p99": _percentile(ordered, 0.99),
            "max": ordered[-1],
        },
        digests=sorted(digests),
        errors=errors,
    )


def run_load(
    host: str,
    port: int,
    clients: int = 8,
    requests: int = 50,
    batch: int = 64,
    seed: int = 17,
) -> LoadReport:
    """Synchronous wrapper around :func:`run_load_async`."""
    return asyncio.run(
        run_load_async(
            host, port, clients=clients, requests=requests, batch=batch, seed=seed
        )
    )


def check_slo(report: LoadReport, slo: Dict[str, object]) -> List[str]:
    """Compare ``report`` against an SLO block; return the violations.

    The block uses the :data:`SLO_KEYS` vocabulary: ``*_max`` keys are
    ceilings, ``*_min`` keys are floors.  Unknown keys are rejected so a
    typo in a committed SLO can never silently pass.
    """
    unknown = set(slo) - set(SLO_KEYS)
    if unknown:
        raise ServingError(f"unknown SLO keys: {sorted(unknown)}")
    violations: List[str] = []
    p99_max = slo.get("p99_ms_max")
    if p99_max is not None and report.latency_ms["p99"] > float(p99_max):
        violations.append(
            f"p99 latency {report.latency_ms['p99']:.3f} ms exceeds the "
            f"ceiling of {float(p99_max):.3f} ms"
        )
    p50_max = slo.get("p50_ms_max")
    if p50_max is not None and report.latency_ms["p50"] > float(p50_max):
        violations.append(
            f"p50 latency {report.latency_ms['p50']:.3f} ms exceeds the "
            f"ceiling of {float(p50_max):.3f} ms"
        )
    rate_min = slo.get("decisions_per_s_min")
    if rate_min is not None and report.decisions_per_s < float(rate_min):
        violations.append(
            f"throughput {report.decisions_per_s:,.0f} decisions/s is below "
            f"the floor of {float(rate_min):,.0f}"
        )
    errors_max = slo.get("errors_max")
    if errors_max is not None and report.error_count > int(errors_max):
        violations.append(
            f"{report.error_count} non-200 responses exceed the allowed "
            f"{int(errors_max)}"
        )
    return violations


def slo_for_scale(baseline: Dict[str, object], scale: str) -> Dict[str, object]:
    """Extract the ``scale`` SLO block from a serving benchmark baseline."""
    slo = baseline.get("slo")
    if not isinstance(slo, dict) or scale not in slo:
        raise ServingError(
            f"baseline has no SLO block for scale {scale!r} "
            "(expected a top-level 'slo' mapping; see docs/serving.md)"
        )
    block = slo[scale]
    if not isinstance(block, dict):
        raise ServingError(f"SLO block for scale {scale!r} must be a mapping")
    return block
