"""Online policy serving: decisions-as-a-service over JSON/HTTP.

The serving stack turns a registered trained-policy artifact
(:mod:`repro.models`) into a long-running decision service:

* :mod:`repro.serving.service` — the transport-agnostic core:
  atomic hot-reloadable model snapshots, batched decisions through
  :meth:`~repro.core.qtable.QTable.best_modes`, bounded what-if scenario
  evaluations, and the stats/histogram machinery;
* :mod:`repro.serving.http` — the asyncio HTTP/1.1 transport (stdlib
  only, no framework);
* :mod:`repro.serving.protocol` — wire formats, state parsing, and the
  typed error-envelope vocabulary;
* :mod:`repro.serving.client` — the minimal asyncio client the load
  generator, benchmarks, and tests use;
* :mod:`repro.serving.loadtest` — deterministic load generation and SLO
  checking;
* :mod:`repro.serving.cli` — ``python -m repro.serving serve|loadtest``.

Every response carries the served model's payload digest, generation, and
the library version, so a decision is always attributable to one exact
Q-table.  See ``docs/serving.md`` for the protocol and the serving
contract.
"""

from repro.serving.client import ServingClient
from repro.serving.http import ServingServer, serve_forever
from repro.serving.loadtest import LoadReport, check_slo, run_load, slo_for_scale
from repro.serving.protocol import (
    ERROR_STATUS,
    PROTOCOL_VERSION,
    RequestError,
    error_envelope,
)
from repro.serving.service import PolicyService, ServedModel, ServingStats

__all__ = [
    "ERROR_STATUS",
    "PROTOCOL_VERSION",
    "LoadReport",
    "PolicyService",
    "RequestError",
    "ServedModel",
    "ServingClient",
    "ServingServer",
    "ServingStats",
    "check_slo",
    "error_envelope",
    "run_load",
    "serve_forever",
    "slo_for_scale",
]
