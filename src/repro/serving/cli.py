"""``python -m repro.serving`` — run and load-test the policy server.

Examples
--------
::

    python -m repro.serving serve qs-demo
    python -m repro.serving serve qs-demo --port 8123 --reload-interval 0.5
    python -m repro.serving loadtest --port 8123 --clients 8 --requests 50
    python -m repro.serving loadtest --port 8123 \\
        --slo benchmarks/results/BENCH_serving.json --scale quick \\
        --out latency-report.json

``serve`` loads a registered model and serves it until interrupted
(hot-reloading when the registry file's digest changes); ``loadtest``
drives a running server with deterministic seeded traffic, prints the
latency/throughput summary, and — given ``--slo`` — exits non-zero on any
SLO violation, which is how CI gates serving regressions.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from repro.errors import DocumentError, ReproError, ServingError
from repro.store.io import read_document
from repro.models.registry import DEFAULT_MODELS_DIR, ModelRegistry
from repro.serving.http import ServingServer, serve_forever
from repro.serving.loadtest import check_slo, run_load, slo_for_scale
from repro.serving.service import (
    DEFAULT_MAX_BATCH,
    DEFAULT_WHATIF_MAX_EVENTS,
    PolicyService,
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.serving`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve trained-policy decisions over JSON/HTTP.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_parser = commands.add_parser(
        "serve", help="serve a registered model until interrupted"
    )
    serve_parser.add_argument("model", help="registered model name to serve")
    serve_parser.add_argument(
        "--models-dir",
        default=None,
        metavar="DIR",
        help=f"model registry directory (default: $REPRO_MODELS_DIR or {DEFAULT_MODELS_DIR})",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: an ephemeral port, printed at startup)",
    )
    serve_parser.add_argument(
        "--reload-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="hot-reload poll interval; 0 disables polling (default: %(default)s)",
    )
    serve_parser.add_argument(
        "--whatif-max-events",
        type=_positive_int,
        default=DEFAULT_WHATIF_MAX_EVENTS,
        metavar="N",
        help="per-request event-budget cap of what-if simulations (default: %(default)s)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=_positive_int,
        default=DEFAULT_MAX_BATCH,
        metavar="N",
        help="largest accepted decision batch (default: %(default)s)",
    )

    load_parser = commands.add_parser(
        "loadtest", help="drive a running server with deterministic load"
    )
    load_parser.add_argument(
        "--host", default="127.0.0.1", help="server address (default: %(default)s)"
    )
    load_parser.add_argument(
        "--port", type=int, required=True, help="server port (required)"
    )
    load_parser.add_argument(
        "--clients", type=_positive_int, default=8, help="concurrent connections"
    )
    load_parser.add_argument(
        "--requests",
        type=_positive_int,
        default=50,
        help="decision requests per client",
    )
    load_parser.add_argument(
        "--batch", type=_positive_int, default=64, help="states per request"
    )
    load_parser.add_argument(
        "--seed", type=int, default=17, help="root seed of the load streams"
    )
    load_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the full JSON load report here",
    )
    load_parser.add_argument(
        "--slo",
        default=None,
        metavar="FILE",
        help="serving benchmark baseline holding the SLO block "
        "(e.g. benchmarks/results/BENCH_serving.json)",
    )
    load_parser.add_argument(
        "--scale",
        choices=("quick", "default"),
        default="quick",
        help="which SLO block of the baseline to enforce (default: %(default)s)",
    )
    return parser


def run_serve(
    model: str,
    models_dir: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    reload_interval: float = 1.0,
    whatif_max_events: int = DEFAULT_WHATIF_MAX_EVENTS,
    max_batch: int = DEFAULT_MAX_BATCH,
    out: Optional[TextIO] = None,
) -> int:
    """Load ``model`` and serve it until interrupted; returns an exit code.

    This is the shared implementation behind both ``python -m
    repro.serving serve`` and ``python -m repro.models serve``.
    """
    stream = out if out is not None else sys.stdout
    service = PolicyService(
        ModelRegistry(models_dir),
        model,
        whatif_max_events=whatif_max_events,
        max_batch=max_batch,
    )
    server = ServingServer(
        service, host=host, port=port, reload_interval=reload_interval
    )

    async def _serve() -> None:
        await server.start()
        snapshot = service.model
        print(
            f"serving model {snapshot.name!r} (digest {snapshot.digest[:12]}…, "
            f"scenario {snapshot.artifact.scenario}) on {server.url}",
            file=stream,
            flush=True,
        )
        await serve_forever(server)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted, shutting down", file=stream)
    return 0


def _cmd_serve(args: argparse.Namespace, out: TextIO) -> int:
    return run_serve(
        args.model,
        models_dir=args.models_dir,
        host=args.host,
        port=args.port,
        reload_interval=args.reload_interval,
        whatif_max_events=args.whatif_max_events,
        max_batch=args.max_batch,
        out=out,
    )


def _cmd_loadtest(args: argparse.Namespace, out: TextIO) -> int:
    try:
        report = run_load(
            args.host,
            args.port,
            clients=args.clients,
            requests=args.requests,
            batch=args.batch,
            seed=args.seed,
        )
    except OSError as exc:
        raise ServingError(
            f"cannot reach the server at {args.host}:{args.port}: {exc}"
        ) from exc
    print(
        f"[serving] {report.decisions:,} decisions over {report.duration_s:.2f}s "
        f"({report.decisions_per_s:,.0f}/s) from {report.clients} clients",
        file=out,
    )
    print(
        f"[serving] latency ms: p50={report.latency_ms['p50']:.3f} "
        f"p90={report.latency_ms['p90']:.3f} p99={report.latency_ms['p99']:.3f} "
        f"max={report.latency_ms['max']:.3f}",
        file=out,
    )
    print(
        f"[serving] digests={','.join(d[:12] for d in report.digests)} "
        f"errors={report.error_count}",
        file=out,
    )
    if args.out is not None:
        destination = Path(args.out)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"[serving] report written to {destination}", file=out)
    if args.slo is not None:
        try:
            baseline = read_document(Path(args.slo))
        except DocumentError as exc:
            raise ServingError(f"cannot read SLO baseline {args.slo}: {exc}") from exc
        violations = check_slo(report, slo_for_scale(baseline, args.scale))
        if violations:
            for violation in violations:
                print(f"[serving] SLO VIOLATION: {violation}", file=out)
            return 1
        print(f"[serving] SLO ({args.scale}) satisfied", file=out)
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
}


def main(argv: Optional[List[str]] = None, stream: Optional[TextIO] = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
