"""A minimal asyncio JSON-over-HTTP client for the serving protocol.

The client exists for the repository's own consumers — the load generator
(:mod:`repro.serving.loadtest`), the benchmarks, and the test suite — so
it implements exactly what the protocol needs: one keep-alive HTTP/1.1
connection per client, one JSON document per request and response, and no
third-party dependencies.  Any ordinary HTTP client works against the
server too; nothing here is bespoke framing.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ServingError


class ServingClient:
    """One keep-alive connection to a :class:`~repro.serving.ServingServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ServingClient":
        """Open the connection (idempotent); returns ``self``."""
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "ServingClient":
        """Connect on entry."""
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        """Close on exit."""
        await self.close()

    # ------------------------------------------------------------------
    async def request(
        self, method: str, path: str, document: Optional[object] = None
    ) -> Tuple[int, Dict[str, object]]:
        """Send one request; return ``(status, decoded response document)``."""
        await self.connect()
        assert self._reader is not None and self._writer is not None
        body = b"" if document is None else json.dumps(document).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> Tuple[int, Dict[str, object]]:
        """Parse one HTTP response off the stream."""
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2:
            raise ServingError(f"malformed response status line {lines[0]!r}")
        status = int(parts[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = await self._reader.readexactly(length) if length else b""
        document = json.loads(payload.decode("utf-8")) if payload else {}
        if not isinstance(document, dict):
            raise ServingError("response body is not a JSON object")
        return status, document

    # ------------------------------------------------------------------
    # Protocol conveniences
    # ------------------------------------------------------------------
    async def get(self, path: str) -> Tuple[int, Dict[str, object]]:
        """``GET path``."""
        return await self.request("GET", path)

    async def post(
        self, path: str, document: object
    ) -> Tuple[int, Dict[str, object]]:
        """``POST path`` with a JSON body."""
        return await self.request("POST", path, document)

    async def decide(
        self, states: Sequence[object]
    ) -> Tuple[int, Dict[str, object]]:
        """Batched decision request for ``states`` (wire formats welcome)."""
        return await self.post("/v1/decide", {"states": list(states)})
