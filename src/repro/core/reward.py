"""Cohmeleon's multi-objective reward function (paper Section 4.2).

For the *i*-th invocation of accelerator *k* the paper defines three scaled
measurements — ``exec(k, i)`` (execution time divided by footprint),
``comm(k, i)`` (communication-cycle ratio), and ``mem(k, i)`` (off-chip
accesses divided by footprint) — and three reward components built from
their running minima/maxima::

    R_exec = min_{j<=i} exec(k, j) / exec(k, i)
    R_comm = min_{j<=i} comm(k, j) / comm(k, i)
    R_mem  = 1 - (mem(k, i) - min_j mem) / (max_j mem - min_j mem)

The total reward is ``x * R_exec + y * R_comm + z * R_mem`` with tunable
non-negative weights.  The weights the paper settles on for the cross-SoC
evaluation are (67.5 %, 7.5 %, 25 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.accelerators.invocation import InvocationResult
from repro.errors import PolicyError

_EPSILON = 1e-12


@dataclass(frozen=True)
class RewardWeights:
    """Weights of the three reward components (normalised to sum to 1)."""

    exec_weight: float = 0.675
    comm_weight: float = 0.075
    mem_weight: float = 0.25

    def __post_init__(self) -> None:
        for name in ("exec_weight", "comm_weight", "mem_weight"):
            if getattr(self, name) < 0:
                raise PolicyError(f"reward weight {name} must be non-negative")
        if self.total <= 0:
            raise PolicyError("at least one reward weight must be positive")

    @property
    def total(self) -> float:
        """Sum of the raw weights."""
        return self.exec_weight + self.comm_weight + self.mem_weight

    def normalized(self) -> Tuple[float, float, float]:
        """Return the weights normalised to sum to one."""
        total = self.total
        return (
            self.exec_weight / total,
            self.comm_weight / total,
            self.mem_weight / total,
        )

    @classmethod
    def from_percentages(cls, exec_pct: float, comm_pct: float, mem_pct: float) -> "RewardWeights":
        """Build weights from the percentage notation the paper uses."""
        return cls(exec_pct / 100.0, comm_pct / 100.0, mem_pct / 100.0)

    def __str__(self) -> str:
        exec_w, comm_w, mem_w = self.normalized()
        return f"({exec_w:.3f}, {comm_w:.3f}, {mem_w:.3f})"


#: The reward weighting used for the cross-SoC experiments in the paper.
DEFAULT_REWARD_WEIGHTS = RewardWeights(0.675, 0.075, 0.25)


@dataclass
class RewardComponents:
    """The three components and the total reward of one invocation."""

    r_exec: float
    r_comm: float
    r_mem: float
    total: float

    def as_dict(self) -> Dict[str, float]:
        """Return the components as a plain dictionary."""
        return {
            "r_exec": self.r_exec,
            "r_comm": self.r_comm,
            "r_mem": self.r_mem,
            "total": self.total,
        }


@dataclass
class _AcceleratorHistory:
    """Running extrema of the scaled metrics for one accelerator."""

    min_exec: float = float("inf")
    min_comm: float = float("inf")
    min_mem: float = float("inf")
    max_mem: float = float("-inf")
    invocations: int = 0


class RewardTracker:
    """Computes the Cohmeleon reward for each completed invocation."""

    def __init__(self, weights: RewardWeights = DEFAULT_REWARD_WEIGHTS) -> None:
        self.weights = weights
        self._history: Dict[str, _AcceleratorHistory] = {}

    # ------------------------------------------------------------------
    def evaluate(self, result: InvocationResult) -> RewardComponents:
        """Update the running extrema with ``result`` and return its reward."""
        history = self._history.setdefault(result.accelerator_name, _AcceleratorHistory())
        history.invocations += 1

        scaled_exec = max(result.scaled_exec, _EPSILON)
        comm_ratio = result.comm_ratio
        scaled_mem = max(result.scaled_mem, 0.0)

        history.min_exec = min(history.min_exec, scaled_exec)
        history.min_comm = min(history.min_comm, comm_ratio)
        history.min_mem = min(history.min_mem, scaled_mem)
        history.max_mem = max(history.max_mem, scaled_mem)

        r_exec = history.min_exec / scaled_exec
        if comm_ratio <= _EPSILON:
            r_comm = 1.0
        else:
            r_comm = min(history.min_comm, comm_ratio) / comm_ratio
        mem_range = history.max_mem - history.min_mem
        if mem_range <= _EPSILON:
            r_mem = 1.0
        else:
            r_mem = 1.0 - (scaled_mem - history.min_mem) / mem_range

        exec_w, comm_w, mem_w = self.weights.normalized()
        total = exec_w * r_exec + comm_w * r_comm + mem_w * r_mem
        return RewardComponents(r_exec=r_exec, r_comm=r_comm, r_mem=r_mem, total=total)

    # ------------------------------------------------------------------
    def history_for(self, accelerator_name: str) -> Dict[str, float]:
        """Return the running extrema recorded for one accelerator."""
        history = self._history.get(accelerator_name, _AcceleratorHistory())
        return {
            "min_exec": history.min_exec,
            "min_comm": history.min_comm,
            "min_mem": history.min_mem,
            "max_mem": history.max_mem,
            "invocations": history.invocations,
        }

    def reset(self) -> None:
        """Forget all per-accelerator history."""
        self._history.clear()
