"""Cohmeleon: the learning-based coherence orchestrator (paper Section 4).

This package contains the paper's primary contribution: the Q-learning
module that selects a cache-coherence mode for every accelerator invocation
at runtime, together with the baseline policies it is compared against
(random, fixed homogeneous, fixed heterogeneous, and the manually-tuned
heuristic of Algorithm 1).
"""

from repro.core.agent import QLearningAgent
from repro.core.policies import (
    CoherencePolicy,
    CohmeleonPolicy,
    FixedHeterogeneousPolicy,
    FixedPolicy,
    ManualPolicy,
    RandomPolicy,
    make_policy,
)
from repro.core.qtable import QTable
from repro.core.reward import RewardComponents, RewardTracker, RewardWeights
from repro.core.state import NUM_STATES, CoherenceState, discretize_snapshot

__all__ = [
    "QLearningAgent",
    "QTable",
    "RewardWeights",
    "RewardTracker",
    "RewardComponents",
    "CoherenceState",
    "NUM_STATES",
    "discretize_snapshot",
    "CoherencePolicy",
    "CohmeleonPolicy",
    "FixedPolicy",
    "FixedHeterogeneousPolicy",
    "RandomPolicy",
    "ManualPolicy",
    "make_policy",
]
