"""Profile-driven construction of the fixed-heterogeneous policy.

The paper's *fixed heterogeneous* baseline chooses one coherence mode per
accelerator at design time "based on profiling the accelerator's
performance in each mode while sweeping the footprint of the workload".
This module contains the selection logic; the actual profiling runs are
produced by :func:`repro.experiments.isolation.profile_accelerators`, which
runs each accelerator alone on the target SoC across footprints and modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from repro.core.policies import FixedHeterogeneousPolicy
from repro.errors import PolicyError
from repro.soc.coherence import CoherenceMode
from repro.utils.stats import geometric_mean


@dataclass(frozen=True)
class ProfileEntry:
    """One profiled invocation: accelerator x mode x footprint."""

    accelerator_name: str
    mode: CoherenceMode
    footprint_bytes: int
    total_cycles: float
    ddr_accesses: float


def _normalised_times(entries: List[ProfileEntry]) -> Dict[CoherenceMode, List[float]]:
    """Group execution times by mode, normalised per footprint.

    For each footprint the times of all modes are divided by the best time
    at that footprint, so that footprints of very different absolute cost
    contribute equally to the aggregate.
    """
    by_footprint: Dict[int, List[ProfileEntry]] = {}
    for entry in entries:
        by_footprint.setdefault(entry.footprint_bytes, []).append(entry)

    normalised: Dict[CoherenceMode, List[float]] = {}
    for footprint_entries in by_footprint.values():
        best = min(entry.total_cycles for entry in footprint_entries)
        best = max(best, 1e-9)
        for entry in footprint_entries:
            normalised.setdefault(entry.mode, []).append(entry.total_cycles / best)
    return normalised


def choose_mode_for_accelerator(entries: List[ProfileEntry]) -> CoherenceMode:
    """Pick the mode with the best (geomean) normalised time across footprints."""
    if not entries:
        raise PolicyError("cannot choose a mode from an empty profile")
    normalised = _normalised_times(entries)
    return min(normalised, key=lambda mode: geometric_mean(normalised[mode]))


def choose_fixed_heterogeneous(
    profile: Iterable[ProfileEntry],
) -> Dict[str, CoherenceMode]:
    """Select one coherence mode per accelerator from profiling data."""
    by_accelerator: Dict[str, List[ProfileEntry]] = {}
    for entry in profile:
        by_accelerator.setdefault(entry.accelerator_name, []).append(entry)
    return {
        name: choose_mode_for_accelerator(entries)
        for name, entries in by_accelerator.items()
    }


def build_fixed_heterogeneous_policy(
    profile: Iterable[ProfileEntry],
    default_mode: CoherenceMode = CoherenceMode.NON_COH_DMA,
) -> FixedHeterogeneousPolicy:
    """Build the design-time baseline policy from profiling data."""
    return FixedHeterogeneousPolicy(
        mode_per_accelerator=choose_fixed_heterogeneous(profile),
        default_mode=default_mode,
    )


def profile_summary(profile: Iterable[ProfileEntry]) -> Mapping[str, Mapping[str, float]]:
    """Summarise a profile as ``{accelerator: {mode: geomean normalised time}}``."""
    by_accelerator: Dict[str, List[ProfileEntry]] = {}
    for entry in profile:
        by_accelerator.setdefault(entry.accelerator_name, []).append(entry)
    summary: Dict[str, Dict[str, float]] = {}
    for name, entries in by_accelerator.items():
        normalised = _normalised_times(entries)
        summary[name] = {
            mode.label: geometric_mean(values) for mode, values in normalised.items()
        }
    return summary
