"""Coherence-selection policies.

This module provides the policy the paper proposes (Cohmeleon, an online
Q-learning agent) and every baseline it is compared against in Section 6:

* ``FixedPolicy`` — one coherence mode for every invocation (the four
  fixed homogeneous policies of the figures);
* ``FixedHeterogeneousPolicy`` — one mode per accelerator, chosen offline
  by profiling (the design-time approach of prior work);
* ``RandomPolicy`` — a uniformly random mode per invocation;
* ``ManualPolicy`` — the manually-tuned runtime heuristic of Algorithm 1;
* ``CohmeleonPolicy`` — the reinforcement-learning approach.

Policies expose a small uniform interface so the runtime can treat them
interchangeably: ``select_mode`` (the *decide* step) and ``observe_result``
(called at the *evaluate* step, which is how Cohmeleon learns online).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.accelerators.invocation import InvocationRequest, InvocationResult
from repro.core.agent import AgentConfig, QLearningAgent
from repro.core.qtable import QTable
from repro.core.reward import DEFAULT_REWARD_WEIGHTS, RewardTracker, RewardWeights
from repro.core.state import CoherenceState, discretize_snapshot
from repro.errors import PolicyError
from repro.runtime.status import SystemSnapshot
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode, mode_from_label
from repro.units import KB
from repro.utils.rng import SeededRNG


class CoherencePolicy:
    """Base class for all coherence-selection policies."""

    #: Cycles of software overhead the policy adds to every invocation
    #: (status tracking, decision making, monitor reads).
    overhead_cycles: float = 0.0

    def __init__(self, name: str) -> None:
        self.name = name

    # ------------------------------------------------------------------
    def select_mode(
        self,
        snapshot: SystemSnapshot,
        request: InvocationRequest,
        supported: Sequence[CoherenceMode],
    ) -> CoherenceMode:
        """Choose a coherence mode for the invocation described by ``request``."""
        raise NotImplementedError

    def observe_result(
        self,
        request: InvocationRequest,
        mode: CoherenceMode,
        snapshot: SystemSnapshot,
        result: InvocationResult,
    ) -> None:
        """Receive the measured outcome of an invocation (default: ignore)."""

    # ------------------------------------------------------------------
    @staticmethod
    def _fallback(preferred: CoherenceMode, supported: Sequence[CoherenceMode]) -> CoherenceMode:
        """Return ``preferred`` if supported, else the closest supported mode."""
        if preferred in supported:
            return preferred
        if not supported:
            raise PolicyError("the target tile supports no coherence mode")
        # Fully-coherent degrades to coherent DMA (the next most hardware-
        # coherent option), everything else to the first supported mode.
        if preferred is CoherenceMode.FULL_COH and CoherenceMode.COH_DMA in supported:
            return CoherenceMode.COH_DMA
        return supported[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class FixedPolicy(CoherencePolicy):
    """Design-time policy: the same coherence mode for every invocation."""

    overhead_cycles = 50.0

    def __init__(self, mode: CoherenceMode) -> None:
        super().__init__(name=f"fixed-{mode.label}")
        self.mode = mode

    def select_mode(
        self,
        snapshot: SystemSnapshot,
        request: InvocationRequest,
        supported: Sequence[CoherenceMode],
    ) -> CoherenceMode:
        """Return the fixed mode (or the closest supported fallback)."""
        return self._fallback(self.mode, supported)


class FixedHeterogeneousPolicy(CoherencePolicy):
    """Design-time policy with one (profiled) mode per accelerator."""

    overhead_cycles = 50.0

    def __init__(
        self,
        mode_per_accelerator: Mapping[str, CoherenceMode],
        default_mode: CoherenceMode = CoherenceMode.NON_COH_DMA,
    ) -> None:
        super().__init__(name="fixed-hetero")
        self.mode_per_accelerator = dict(mode_per_accelerator)
        self.default_mode = default_mode

    def select_mode(
        self,
        snapshot: SystemSnapshot,
        request: InvocationRequest,
        supported: Sequence[CoherenceMode],
    ) -> CoherenceMode:
        """Return the profiled per-accelerator mode (or the default)."""
        preferred = self.mode_per_accelerator.get(
            request.accelerator.name, self.default_mode
        )
        return self._fallback(preferred, supported)


class RandomPolicy(CoherencePolicy):
    """Uniformly random coherence mode for every invocation."""

    overhead_cycles = 100.0

    def __init__(self, rng: Optional[SeededRNG] = None) -> None:
        super().__init__(name="rand")
        self.rng = rng if rng is not None else SeededRNG(0)

    def select_mode(
        self,
        snapshot: SystemSnapshot,
        request: InvocationRequest,
        supported: Sequence[CoherenceMode],
    ) -> CoherenceMode:
        """Draw a uniformly random mode from the supported set."""
        if not supported:
            raise PolicyError("the target tile supports no coherence mode")
        return self.rng.choice(list(supported))


@dataclass(frozen=True)
class ManualPolicyThresholds:
    """Tunable constants of the manually-tuned heuristic (Algorithm 1)."""

    extra_small_bytes: int = 4 * KB


class ManualPolicy(CoherencePolicy):
    """The manually-tuned, introspective heuristic of Algorithm 1.

    The algorithm was tuned by the paper's authors for the ESP platform
    using tens of thousands of profiled invocations; it consumes the same
    sensed state as Cohmeleon but its rules are fixed:

    * tiny footprints run fully coherent;
    * footprints that fit in the private cache run fully coherent or with
      coherent DMA, whichever mode is currently less contended;
    * footprints that (together with the already-active data) overflow the
      aggregate LLC run non-coherent;
    * everything else uses coherent DMA, falling back to LLC-coherent DMA
      when two or more non-coherent accelerators are already active.
    """

    overhead_cycles = 400.0

    def __init__(self, thresholds: ManualPolicyThresholds = ManualPolicyThresholds()) -> None:
        super().__init__(name="manual")
        self.thresholds = thresholds

    def select_mode(
        self,
        snapshot: SystemSnapshot,
        request: InvocationRequest,
        supported: Sequence[CoherenceMode],
    ) -> CoherenceMode:
        """Apply the Algorithm 1 rules to the sensed snapshot."""
        footprint = snapshot.target_footprint_bytes
        active_fully_coh = snapshot.active_count(CoherenceMode.FULL_COH)
        active_coh_dma = snapshot.active_count(CoherenceMode.COH_DMA)
        active_non_coh = snapshot.active_count(CoherenceMode.NON_COH_DMA)

        if footprint <= self.thresholds.extra_small_bytes:
            choice = CoherenceMode.FULL_COH
        elif footprint <= snapshot.l2_bytes:
            if active_coh_dma > active_fully_coh:
                choice = CoherenceMode.FULL_COH
            else:
                choice = CoherenceMode.COH_DMA
        elif footprint + snapshot.active_footprint_bytes > snapshot.llc_total_bytes:
            choice = CoherenceMode.NON_COH_DMA
        else:
            if active_non_coh >= 2:
                choice = CoherenceMode.LLC_COH_DMA
            else:
                choice = CoherenceMode.COH_DMA
        return self._fallback(choice, supported)


@dataclass
class DecisionRecord:
    """One coherence decision made by the Cohmeleon policy (for Figure 7)."""

    accelerator_name: str
    footprint_bytes: int
    state: CoherenceState
    mode: CoherenceMode
    explored: bool
    reward: float = 0.0


class CohmeleonPolicy(CoherencePolicy):
    """Cohmeleon: online Q-learning selection of the coherence mode."""

    overhead_cycles = 1500.0

    def __init__(
        self,
        weights: RewardWeights = DEFAULT_REWARD_WEIGHTS,
        agent_config: Optional[AgentConfig] = None,
        rng: Optional[SeededRNG] = None,
    ) -> None:
        super().__init__(name="cohmeleon")
        self.agent = QLearningAgent(
            config=agent_config if agent_config is not None else AgentConfig(),
            rng=rng if rng is not None else SeededRNG(0),
        )
        self.reward_tracker = RewardTracker(weights)
        self.decisions: List[DecisionRecord] = []
        self._pending: Dict[str, DecisionRecord] = {}

    # ------------------------------------------------------------------
    def select_mode(
        self,
        snapshot: SystemSnapshot,
        request: InvocationRequest,
        supported: Sequence[CoherenceMode],
    ) -> CoherenceMode:
        """Discretize the snapshot and let the Q-learning agent choose."""
        state = discretize_snapshot(snapshot)
        before_random = self.agent.random_decisions
        mode = self.agent.select_action(state, allowed=supported)
        record = DecisionRecord(
            accelerator_name=request.accelerator.name,
            footprint_bytes=request.footprint_bytes,
            state=state,
            mode=mode,
            explored=self.agent.random_decisions > before_random,
        )
        self.decisions.append(record)
        self._pending[request.tile_name] = record
        return mode

    def observe_result(
        self,
        request: InvocationRequest,
        mode: CoherenceMode,
        snapshot: SystemSnapshot,
        result: InvocationResult,
    ) -> None:
        """Compute the reward for the finished invocation and learn from it."""
        components = self.reward_tracker.evaluate(result)
        record = self._pending.pop(request.tile_name, None)
        state = record.state if record is not None else discretize_snapshot(snapshot)
        if record is not None:
            record.reward = components.total
        self.agent.update(state, mode, components.total)

    # ------------------------------------------------------------------
    # Persistence (see repro.models for the artifact format)
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, artifact: object) -> "CohmeleonPolicy":
        """Rebuild a *frozen* policy from a trained-policy artifact.

        ``artifact`` is a :class:`repro.models.PolicyArtifact` (accepted
        duck-typed so :mod:`repro.core` never imports :mod:`repro.models`):
        the Q-table, the agent hyper-parameters, the reward weights, and
        the agent's RNG stream — restored to the exact state it had when
        the policy was frozen after training — are all recovered, so a
        frozen evaluation of the reloaded policy is bit-identical to one
        that trained in-process.  The returned policy is frozen; call
        :meth:`unfreeze` to fine-tune it online instead.
        """
        state = artifact.policy_state  # type: ignore[attr-defined]
        if state.get("kind") != "cohmeleon":
            raise PolicyError(
                f"artifact holds a {state.get('kind')!r} policy, expected 'cohmeleon'"
            )
        config = AgentConfig(**{
            key: float(value) for key, value in dict(state["agent_config"]).items()
        })
        weights = RewardWeights(**{
            key: float(value) for key, value in dict(state["reward_weights"]).items()
        })
        rng_doc = dict(state["rng"])
        rng = SeededRNG(int(rng_doc["seed"]))
        if rng_doc.get("state") is not None:
            try:
                rng.restore_state(rng_doc["state"])
            except ValueError as exc:
                raise PolicyError(f"artifact RNG state is corrupt: {exc}") from exc
        policy = cls(weights=weights, agent_config=config, rng=rng)
        policy.agent.qtable = QTable.from_dict(dict(state["qtable"]))
        policy.freeze()
        return policy

    def policy_state(self) -> Dict[str, object]:
        """Serialise the learned state (the artifact's ``policy`` block).

        The inverse of :meth:`from_artifact`: captures the Q-table, the
        hyper-parameters, the reward weights, and the agent RNG stream's
        current position.  Everything is JSON-able.
        """
        return {
            "kind": "cohmeleon",
            "agent_config": {
                "initial_epsilon": self.agent.config.initial_epsilon,
                "initial_alpha": self.agent.config.initial_alpha,
            },
            "reward_weights": {
                "exec_weight": self.reward_tracker.weights.exec_weight,
                "comm_weight": self.reward_tracker.weights.comm_weight,
                "mem_weight": self.reward_tracker.weights.mem_weight,
            },
            "qtable": self.agent.qtable.to_dict(),
            "rng": {
                "seed": self.agent.rng.seed,
                "state": self.agent.rng.export_state(),
            },
        }

    # ------------------------------------------------------------------
    # Training-schedule helpers used by the experiment harnesses
    # ------------------------------------------------------------------
    def set_training_progress(self, fraction: float) -> None:
        """Linearly decay exploration and learning rate (0 → start, 1 → end)."""
        self.agent.set_training_progress(fraction)

    def freeze(self) -> None:
        """Stop exploring and learning; evaluate the learned policy."""
        self.agent.freeze()

    def unfreeze(self) -> None:
        """Resume online learning."""
        self.agent.unfreeze()

    @property
    def qtable(self):
        """The underlying Q-table (for inspection and persistence)."""
        return self.agent.qtable

    def decision_breakdown(self) -> Dict[str, int]:
        """Count of decisions per coherence mode (used for Figure 7)."""
        breakdown: Dict[str, int] = {m.label: 0 for m in COHERENCE_MODES}
        for record in self.decisions:
            breakdown[record.mode.label] += 1
        return breakdown

    def clear_history(self) -> None:
        """Drop the recorded decisions (keeps the learned Q-table)."""
        self.decisions.clear()
        self._pending.clear()


def make_policy(kind: str, rng: Optional[SeededRNG] = None, **kwargs: object) -> CoherencePolicy:
    """Factory used by the experiment harnesses.

    ``kind`` is one of ``'fixed-<mode-label>'``, ``'fixed-hetero'``,
    ``'rand'``, ``'manual'``, or ``'cohmeleon'``.
    """
    if kind.startswith("fixed-") and kind != "fixed-hetero":
        return FixedPolicy(mode_from_label(kind[len("fixed-"):]))
    if kind == "fixed-hetero":
        mapping = kwargs.get("mode_per_accelerator", {})
        return FixedHeterogeneousPolicy(mapping)  # type: ignore[arg-type]
    if kind == "rand":
        return RandomPolicy(rng=rng)
    if kind == "manual":
        return ManualPolicy()
    if kind == "cohmeleon":
        weights = kwargs.get("weights", DEFAULT_REWARD_WEIGHTS)
        return CohmeleonPolicy(weights=weights, rng=rng)  # type: ignore[arg-type]
    raise PolicyError(f"unknown policy kind {kind!r}")
