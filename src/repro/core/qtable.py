"""Tabular Q-value storage.

The Q-table has one row per discretised state (243) and one column per
action (the four coherence modes), i.e. 972 entries as in the paper.  The
update rule is the one the paper gives::

    Q(s, a) <- (1 - alpha) * Q(s, a) + alpha * R(s, a)

(there is no next-state bootstrap term: each invocation is an independent
decision whose reward arrives before the next decision for that
accelerator, so the problem is treated as a contextual bandit).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.state import NUM_STATES, CoherenceState
from repro.errors import PolicyError
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode, mode_index
from repro.utils.rng import SeededRNG


class QTable:
    """Q-values for every (state, coherence mode) pair."""

    def __init__(self, num_states: int = NUM_STATES, initial_value: float = 0.0) -> None:
        if num_states <= 0:
            raise PolicyError("the Q-table needs at least one state")
        self.num_states = num_states
        self.num_actions = len(COHERENCE_MODES)
        self._values = np.full((num_states, self.num_actions), float(initial_value))
        self._updates = np.zeros((num_states, self.num_actions), dtype=np.int64)

    # ------------------------------------------------------------------
    def _state_index(self, state: "CoherenceState | int") -> int:
        index = state.index if isinstance(state, CoherenceState) else int(state)
        if not 0 <= index < self.num_states:
            raise PolicyError(f"state index {index} out of range")
        return index

    def value(self, state: "CoherenceState | int", mode: CoherenceMode) -> float:
        """Q-value of taking ``mode`` from ``state``."""
        return float(self._values[self._state_index(state), mode_index(mode)])

    def values_for(self, state: "CoherenceState | int") -> Dict[CoherenceMode, float]:
        """All four Q-values of ``state``."""
        row = self._values[self._state_index(state)]
        return {mode: float(row[mode_index(mode)]) for mode in COHERENCE_MODES}

    def update(
        self,
        state: "CoherenceState | int",
        mode: CoherenceMode,
        reward: float,
        alpha: float,
    ) -> float:
        """Apply the paper's exponential-averaging update; return the new value."""
        if not 0.0 <= alpha <= 1.0:
            raise PolicyError(f"learning rate must be in [0, 1], got {alpha}")
        s = self._state_index(state)
        a = mode_index(mode)
        new_value = (1.0 - alpha) * self._values[s, a] + alpha * float(reward)
        self._values[s, a] = new_value
        self._updates[s, a] += 1
        return float(new_value)

    def best_mode(
        self,
        state: "CoherenceState | int",
        allowed: Optional[Sequence[CoherenceMode]] = None,
        rng: Optional["SeededRNG"] = None,
    ) -> CoherenceMode:
        """Mode with the highest Q-value in ``state`` (restricted to ``allowed``).

        Ties — in particular the all-zero rows of states that have never
        been visited — are broken uniformly at random when an ``rng`` is
        provided, so the untrained table does not systematically favour the
        first action of the canonical ordering.
        """
        if allowed is not None and len(allowed) == 0:
            raise PolicyError("no coherence modes available to choose from")
        candidates: Sequence[CoherenceMode] = allowed if allowed else COHERENCE_MODES
        row = self._values[self._state_index(state)]
        # One index lookup per candidate (the canonical-index table), then
        # plain-float comparisons — this runs once per simulated decision.
        values = [float(row[mode_index(mode)]) for mode in candidates]
        best_value = max(values)
        # Exact equality only: an absolute threshold is scale-dependent —
        # it merges genuinely distinct values once they sit below it, and
        # `best - 1e-12` rounds back to `best` once Q-values grow large —
        # and every value admitted here consumes a tie-break RNG draw,
        # which must not depend on the magnitude the table has reached.
        best_candidates = [
            mode for mode, value in zip(candidates, values) if value == best_value
        ]
        if rng is not None and len(best_candidates) > 1:
            return rng.choice(best_candidates)
        return best_candidates[0]

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """A copy of the full Q-value matrix."""
        return self._values.copy()

    def update_counts(self) -> np.ndarray:
        """Number of updates applied to every entry."""
        return self._updates.copy()

    def visited_states(self) -> List[int]:
        """Indices of states that have received at least one update."""
        return [int(index) for index in np.flatnonzero(self._updates.sum(axis=1))]

    def coverage(self) -> float:
        """Fraction of states visited at least once."""
        return len(self.visited_states()) / self.num_states

    def to_dict(self) -> Dict[str, object]:
        """Serialise the table (e.g. to persist a trained model)."""
        return {
            "num_states": self.num_states,
            "values": self._values.tolist(),
            "updates": self._updates.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QTable":
        """Restore a table serialised with :meth:`to_dict`.

        Both matrices are validated — shape, dtype, and value domain — so a
        corrupt or hand-edited payload fails loudly here instead of
        corrupting :meth:`visited_states`/:meth:`coverage` or blowing up
        deep inside a simulation:

        * ``values`` must be a ``(num_states, num_actions)`` matrix of
          finite numbers (NaN/inf Q-values would poison every later
          comparison in :meth:`best_mode`);
        * ``updates`` must be a same-shaped matrix of non-negative
          integers (update *counts*; a float or negative payload is
          corrupt, not coercible).
        """
        for key in ("num_states", "values", "updates"):
            if key not in payload:
                raise PolicyError(f"serialised Q-table is missing the {key!r} field")
        try:
            num_states = int(payload["num_states"])  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise PolicyError(f"serialised Q-table num_states is invalid: {exc}") from exc
        table = cls(num_states=num_states)
        try:
            values = np.asarray(payload["values"], dtype=float)
        except (TypeError, ValueError) as exc:
            raise PolicyError(f"serialised Q-table values are not numeric: {exc}") from exc
        if values.shape != table._values.shape:
            raise PolicyError(
                f"serialised Q-table values have shape {values.shape}, "
                f"expected {table._values.shape}"
            )
        if not np.isfinite(values).all():
            raise PolicyError("serialised Q-table contains non-finite values")
        try:
            updates_raw = np.asarray(payload["updates"])
        except (TypeError, ValueError) as exc:  # pragma: no cover - asarray is lax
            raise PolicyError(f"serialised Q-table update counts are invalid: {exc}") from exc
        if updates_raw.shape != table._updates.shape:
            raise PolicyError(
                f"serialised Q-table update counts have shape {updates_raw.shape}, "
                f"expected {table._updates.shape}"
            )
        if not np.issubdtype(updates_raw.dtype, np.number):
            raise PolicyError("serialised Q-table update counts are not numeric")
        if not np.isfinite(np.asarray(updates_raw, dtype=float)).all():
            raise PolicyError("serialised Q-table update counts are non-finite")
        updates = np.asarray(updates_raw, dtype=np.int64)
        if (np.asarray(updates_raw, dtype=float) != updates).any():
            raise PolicyError("serialised Q-table update counts are not integers")
        if (updates < 0).any():
            raise PolicyError("serialised Q-table update counts are negative")
        table._values = values
        table._updates = updates
        return table

    def reset(self, initial_value: float = 0.0) -> None:
        """Reset all entries (the paper initialises the table to zero)."""
        self._values.fill(float(initial_value))
        self._updates.fill(0)
