"""Tabular Q-value storage.

The Q-table has one row per discretised state (243) and one column per
action (the four coherence modes), i.e. 972 entries as in the paper.  The
update rule is the one the paper gives::

    Q(s, a) <- (1 - alpha) * Q(s, a) + alpha * R(s, a)

(there is no next-state bootstrap term: each invocation is an independent
decision whose reward arrives before the next decision for that
accelerator, so the problem is treated as a contextual bandit).

The table ships in the two core backends of
:mod:`repro.utils.backend`:  the ``reference`` backend stores and updates
the dense ``(state, mode)`` value/count matrices directly; the
``vectorized`` backend keeps the same dense matrices as the canonical
persisted form but routes the per-decision hot path through plain-float
row mirrors (numpy scalar indexing costs more than the arithmetic at this
table size) and re-materialises the matrices lazily.  Both backends
produce bit-identical values, serialisations, and tie-break RNG draws;
``tests/test_core_differential.py`` holds them to that.

Batched operations (:meth:`QTable.update_batch`,
:meth:`QTable.best_modes`) apply updates **in arrival order** with the
exact scalar recurrence above.  Folding a batch into a closed-form
cumulative product would change the floating-point rounding (summation
order changes results), so the batched path deliberately replays the
sequential recurrence; ``tests/test_qlearning.py`` pins the digest of a
seeded 1k-step episode to keep it that way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.state import NUM_STATES, CoherenceState
from repro.errors import PolicyError
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode, mode_index
from repro.utils.backend import active_backend, normalize_backend
from repro.utils.rng import SeededRNG


class QTable:
    """Q-values for every (state, coherence mode) pair."""

    def __init__(
        self,
        num_states: int = NUM_STATES,
        initial_value: float = 0.0,
        backend: Optional[str] = None,
    ) -> None:
        if num_states <= 0:
            raise PolicyError("the Q-table needs at least one state")
        self.num_states = num_states
        self.num_actions = len(COHERENCE_MODES)
        self.backend = active_backend() if backend is None else normalize_backend(backend)
        self._vectorized = self.backend == "vectorized"
        self._values = np.full((num_states, self.num_actions), float(initial_value))
        self._updates = np.zeros((num_states, self.num_actions), dtype=np.int64)
        if self._vectorized:
            value = float(initial_value)
            self._rows: List[List[float]] = [
                [value] * self.num_actions for _ in range(num_states)
            ]
            self._count_rows: List[List[int]] = [
                [0] * self.num_actions for _ in range(num_states)
            ]
        # Whether the dense matrices lag behind the row mirrors (vectorized
        # backend only; the reference backend mutates the matrices directly).
        self._stale = False

    # ------------------------------------------------------------------
    def _state_index(self, state: "CoherenceState | int") -> int:
        index = state.index if isinstance(state, CoherenceState) else int(state)
        if not 0 <= index < self.num_states:
            raise PolicyError(f"state index {index} out of range")
        return index

    def _sync(self) -> None:
        """Re-materialise the dense matrices from the row mirrors."""
        if self._stale:
            self._values = np.array(self._rows, dtype=float)
            self._updates = np.array(self._count_rows, dtype=np.int64)
            self._stale = False

    def _load_matrices(self, values: np.ndarray, updates: np.ndarray) -> None:
        """Adopt validated matrices (the deserialisation path)."""
        self._values = values
        self._updates = updates
        if self._vectorized:
            self._rows = [list(map(float, row)) for row in values]
            self._count_rows = [[int(count) for count in row] for row in updates]
        self._stale = False

    def value(self, state: "CoherenceState | int", mode: CoherenceMode) -> float:
        """Q-value of taking ``mode`` from ``state``."""
        if self._vectorized:
            return self._rows[self._state_index(state)][mode_index(mode)]
        return float(self._values[self._state_index(state), mode_index(mode)])

    def values_for(self, state: "CoherenceState | int") -> Dict[CoherenceMode, float]:
        """All four Q-values of ``state``."""
        if self._vectorized:
            row = self._rows[self._state_index(state)]
            return {mode: row[mode_index(mode)] for mode in COHERENCE_MODES}
        row = self._values[self._state_index(state)]
        return {mode: float(row[mode_index(mode)]) for mode in COHERENCE_MODES}

    def update(
        self,
        state: "CoherenceState | int",
        mode: CoherenceMode,
        reward: float,
        alpha: float,
    ) -> float:
        """Apply the paper's exponential-averaging update; return the new value."""
        if not 0.0 <= alpha <= 1.0:
            raise PolicyError(f"learning rate must be in [0, 1], got {alpha}")
        s = self._state_index(state)
        a = mode_index(mode)
        if self._vectorized:
            row = self._rows[s]
            new_value = (1.0 - alpha) * row[a] + alpha * float(reward)
            row[a] = new_value
            self._count_rows[s][a] += 1
            self._stale = True
            return new_value
        new_value = (1.0 - alpha) * self._values[s, a] + alpha * float(reward)
        self._values[s, a] = new_value
        self._updates[s, a] += 1
        return float(new_value)

    def update_batch(
        self,
        states: Sequence["CoherenceState | int"],
        modes: Sequence[CoherenceMode],
        rewards: Sequence[float],
        alphas: Sequence[float],
    ) -> None:
        """Apply a batch of TD updates **in arrival order**.

        All four sequences must have equal length; element ``i`` is one
        ``update(states[i], modes[i], rewards[i], alphas[i])``.  The batch
        is replayed with the exact scalar recurrence of :meth:`update` —
        never folded into a reordered summation, which would change the
        floating-point results — so a batched training loop is
        bit-identical to the per-step one on both backends.
        """
        if not len(states) == len(modes) == len(rewards) == len(alphas):
            raise PolicyError(
                "update_batch requires states, modes, rewards, and alphas "
                "of equal length"
            )
        if not self._vectorized:
            for state, mode, reward, alpha in zip(states, modes, rewards, alphas):
                self.update(state, mode, reward, alpha)
            return
        # Hot path: validate and resolve indices first, then replay the
        # recurrence over the row mirrors without per-step dispatch.
        pairs = []
        for state, mode, alpha in zip(states, modes, alphas):
            if not 0.0 <= alpha <= 1.0:
                raise PolicyError(f"learning rate must be in [0, 1], got {alpha}")
            pairs.append((self._state_index(state), mode_index(mode)))
        rows = self._rows
        count_rows = self._count_rows
        for (s, a), reward, alpha in zip(pairs, rewards, alphas):
            row = rows[s]
            row[a] = (1.0 - alpha) * row[a] + alpha * float(reward)
            count_rows[s][a] += 1
        if pairs:
            self._stale = True

    def best_mode(
        self,
        state: "CoherenceState | int",
        allowed: Optional[Sequence[CoherenceMode]] = None,
        rng: Optional["SeededRNG"] = None,
    ) -> CoherenceMode:
        """Mode with the highest Q-value in ``state`` (restricted to ``allowed``).

        Ties — in particular the all-zero rows of states that have never
        been visited — are broken uniformly at random when an ``rng`` is
        provided, so the untrained table does not systematically favour the
        first action of the canonical ordering.
        """
        if allowed is not None and len(allowed) == 0:
            raise PolicyError("no coherence modes available to choose from")
        candidates: Sequence[CoherenceMode] = allowed if allowed else COHERENCE_MODES
        if self._vectorized:
            row = self._rows[self._state_index(state)]
            if candidates is COHERENCE_MODES:
                # The row mirror is stored in canonical mode order, so the
                # unrestricted case needs no per-candidate index lookups.
                values: Sequence[float] = row
            else:
                values = [row[mode_index(mode)] for mode in candidates]
        else:
            np_row = self._values[self._state_index(state)]
            # One index lookup per candidate (the canonical-index table),
            # then plain-float comparisons — this runs once per simulated
            # decision.
            values = [float(np_row[mode_index(mode)]) for mode in candidates]
        best_value = max(values)
        # Exact equality only: an absolute threshold is scale-dependent —
        # it merges genuinely distinct values once they sit below it, and
        # `best - 1e-12` rounds back to `best` once Q-values grow large —
        # and every value admitted here consumes a tie-break RNG draw,
        # which must not depend on the magnitude the table has reached.
        best_candidates = [
            mode for mode, value in zip(candidates, values) if value == best_value
        ]
        if rng is not None and len(best_candidates) > 1:
            return rng.choice(best_candidates)
        return best_candidates[0]

    def best_modes(self, states: Sequence["CoherenceState | int"]) -> List[CoherenceMode]:
        """Greedy mode for each of ``states`` (deterministic, no tie RNG).

        The batch counterpart of ``best_mode(state, rng=None)``: ties
        resolve to the first mode of the canonical ordering.  On the
        vectorized backend this is a dense argmax over the value matrix
        (``numpy.argmax`` returns the first maximal index, which matches
        the scalar tie rule exactly because comparisons are exact float
        equality on both paths).
        """
        if not states:
            return []
        indices = [self._state_index(state) for state in states]
        if self._vectorized:
            self._sync()
        winners = np.argmax(self._values[indices], axis=1)
        return [COHERENCE_MODES[int(winner)] for winner in winners]

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """A copy of the full Q-value matrix."""
        self._sync()
        return self._values.copy()

    def update_counts(self) -> np.ndarray:
        """Number of updates applied to every entry."""
        self._sync()
        return self._updates.copy()

    def visited_states(self) -> List[int]:
        """Indices of states that have received at least one update."""
        self._sync()
        return [int(index) for index in np.flatnonzero(self._updates.sum(axis=1))]

    def coverage(self) -> float:
        """Fraction of states visited at least once."""
        return len(self.visited_states()) / self.num_states

    def to_dict(self) -> Dict[str, object]:
        """Serialise the table (e.g. to persist a trained model)."""
        self._sync()
        return {
            "num_states": self.num_states,
            "values": self._values.tolist(),
            "updates": self._updates.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QTable":
        """Restore a table serialised with :meth:`to_dict`.

        Both matrices are validated — shape, dtype, and value domain — so a
        corrupt or hand-edited payload fails loudly here instead of
        corrupting :meth:`visited_states`/:meth:`coverage` or blowing up
        deep inside a simulation:

        * ``values`` must be a ``(num_states, num_actions)`` matrix of
          finite numbers (NaN/inf Q-values would poison every later
          comparison in :meth:`best_mode`);
        * ``updates`` must be a same-shaped matrix of non-negative
          integers (update *counts*; a float or negative payload is
          corrupt, not coercible).
        """
        for key in ("num_states", "values", "updates"):
            if key not in payload:
                raise PolicyError(f"serialised Q-table is missing the {key!r} field")
        try:
            num_states = int(payload["num_states"])  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise PolicyError(f"serialised Q-table num_states is invalid: {exc}") from exc
        table = cls(num_states=num_states)
        try:
            values = np.asarray(payload["values"], dtype=float)
        except (TypeError, ValueError) as exc:
            raise PolicyError(f"serialised Q-table values are not numeric: {exc}") from exc
        if values.shape != table._values.shape:
            raise PolicyError(
                f"serialised Q-table values have shape {values.shape}, "
                f"expected {table._values.shape}"
            )
        if not np.isfinite(values).all():
            raise PolicyError("serialised Q-table contains non-finite values")
        try:
            updates_raw = np.asarray(payload["updates"])
        except (TypeError, ValueError) as exc:  # pragma: no cover - asarray is lax
            raise PolicyError(f"serialised Q-table update counts are invalid: {exc}") from exc
        if updates_raw.shape != table._updates.shape:
            raise PolicyError(
                f"serialised Q-table update counts have shape {updates_raw.shape}, "
                f"expected {table._updates.shape}"
            )
        if not np.issubdtype(updates_raw.dtype, np.number):
            raise PolicyError("serialised Q-table update counts are not numeric")
        if not np.isfinite(np.asarray(updates_raw, dtype=float)).all():
            raise PolicyError("serialised Q-table update counts are non-finite")
        updates = np.asarray(updates_raw, dtype=np.int64)
        if (np.asarray(updates_raw, dtype=float) != updates).any():
            raise PolicyError("serialised Q-table update counts are not integers")
        if (updates < 0).any():
            raise PolicyError("serialised Q-table update counts are negative")
        table._load_matrices(values, updates)
        return table

    def reset(self, initial_value: float = 0.0) -> None:
        """Reset all entries (the paper initialises the table to zero)."""
        value = float(initial_value)
        self._values.fill(value)
        self._updates.fill(0)
        if self._vectorized:
            self._rows = [[value] * self.num_actions for _ in range(self.num_states)]
            self._count_rows = [[0] * self.num_actions for _ in range(self.num_states)]
        self._stale = False
