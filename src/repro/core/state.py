"""The RL state space (paper Table 3).

A state is a 5-tuple of attributes, each taking one of three values:

* ``fully_coh_acc`` — number of active fully-coherent accelerators
  (0, 1, 2+);
* ``non_coh_acc_per_tile`` — average number of non-coherent accelerators
  communicating with each memory partition needed by the target invocation
  (0, 1, 2+);
* ``to_llc_per_tile`` — average number of accelerators accessing each LLC
  partition needed by the target invocation (0, 1, 2+);
* ``tile_footprint`` — average utilisation of each partition of the cache
  hierarchy needed by the target (≤ L2, ≤ LLC slice, > LLC slice);
* ``acc_footprint`` — memory footprint of the target invocation
  (≤ L2, ≤ LLC slice, > LLC slice).

With 3 values per attribute the state space has 3^5 = 243 states, and the
Q-table has 243 x 4 = 972 entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import PolicyError
from repro.runtime.status import SystemSnapshot
from repro.soc.coherence import CoherenceMode

#: Number of discrete values each attribute can take.
LEVELS_PER_ATTRIBUTE = 3

#: Number of attributes in a state.
NUM_ATTRIBUTES = 5

#: Total number of states (3^5 = 243).
NUM_STATES = LEVELS_PER_ATTRIBUTE**NUM_ATTRIBUTES


def _count_level(count: float) -> int:
    """Discretise a count into the paper's {0, 1, 2+} levels."""
    if count < 0.5:
        return 0
    if count < 1.5:
        return 1
    return 2


def _footprint_level(footprint_bytes: float, l2_bytes: int, llc_slice_bytes: int) -> int:
    """Discretise a footprint into {<= L2, <= LLC slice, > LLC slice}."""
    if footprint_bytes <= l2_bytes:
        return 0
    if footprint_bytes <= llc_slice_bytes:
        return 1
    return 2


@dataclass(frozen=True)
class CoherenceState:
    """One discretised state of the Q-learning agent."""

    fully_coh_acc: int
    non_coh_acc_per_tile: int
    to_llc_per_tile: int
    tile_footprint: int
    acc_footprint: int

    def __post_init__(self) -> None:
        index = 0
        for name, value in self.as_tuple_named():
            if not 0 <= value < LEVELS_PER_ATTRIBUTE:
                raise PolicyError(f"state attribute {name} out of range: {value}")
            index = index * LEVELS_PER_ATTRIBUTE + value
        # The base-3 index is read several times per decision (Q-table
        # lookups and updates); cache it at construction.  The dataclass is
        # frozen, hence the object.__setattr__.
        object.__setattr__(self, "_index", index)

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """Return the attributes as a plain tuple."""
        return (
            self.fully_coh_acc,
            self.non_coh_acc_per_tile,
            self.to_llc_per_tile,
            self.tile_footprint,
            self.acc_footprint,
        )

    def as_tuple_named(self) -> Tuple[Tuple[str, int], ...]:
        """Return ``(name, value)`` pairs for diagnostics."""
        return (
            ("fully_coh_acc", self.fully_coh_acc),
            ("non_coh_acc_per_tile", self.non_coh_acc_per_tile),
            ("to_llc_per_tile", self.to_llc_per_tile),
            ("tile_footprint", self.tile_footprint),
            ("acc_footprint", self.acc_footprint),
        )

    @property
    def index(self) -> int:
        """Base-3 encoding of the state, in ``[0, NUM_STATES)``."""
        return self._index

    @classmethod
    def from_index(cls, index: int) -> "CoherenceState":
        """Decode a state from its base-3 index."""
        if not 0 <= index < NUM_STATES:
            raise PolicyError(f"state index {index} out of range")
        values = []
        for _ in range(NUM_ATTRIBUTES):
            values.append(index % LEVELS_PER_ATTRIBUTE)
            index //= LEVELS_PER_ATTRIBUTE
        values.reverse()
        return cls(*values)


#: Interning table: at most 243 distinct states exist, and one is built per
#: simulated coherence decision, so discretisation returns shared instances
#: instead of re-validating a fresh dataclass every step.
_INTERNED: dict = {}


def intern_state(
    fully_coh_acc: int,
    non_coh_acc_per_tile: int,
    to_llc_per_tile: int,
    tile_footprint: int,
    acc_footprint: int,
) -> CoherenceState:
    """Return the shared :class:`CoherenceState` for the given attributes."""
    key = (
        fully_coh_acc,
        non_coh_acc_per_tile,
        to_llc_per_tile,
        tile_footprint,
        acc_footprint,
    )
    state = _INTERNED.get(key)
    if state is None:
        state = CoherenceState(*key)
        _INTERNED[key] = state
    return state


#: Label under which snapshots count active fully-coherent accelerators.
_FULL_COH_LABEL = CoherenceMode.FULL_COH.label


def discretize_snapshot(snapshot: SystemSnapshot) -> CoherenceState:
    """Discretise a sensed :class:`SystemSnapshot` into a Table 3 state."""
    return intern_state(
        _count_level(snapshot.active_per_mode.get(_FULL_COH_LABEL, 0)),
        _count_level(snapshot.non_coh_per_target_tile),
        _count_level(snapshot.llc_users_per_target_tile),
        _footprint_level(
            snapshot.tile_footprint_bytes, snapshot.l2_bytes, snapshot.llc_partition_bytes
        ),
        _footprint_level(
            snapshot.target_footprint_bytes, snapshot.l2_bytes, snapshot.llc_partition_bytes
        ),
    )
