"""Epsilon-greedy Q-learning agent with linear decay.

The paper initialises the exploration rate to ``epsilon = 0.5`` and the
learning rate to ``alpha = 0.25`` and decays both linearly to zero over a
chosen number of training iterations; after training, updates are disabled
and the frozen policy is evaluated on a different application instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.qtable import QTable
from repro.core.state import CoherenceState
from repro.errors import PolicyError
from repro.soc.coherence import COHERENCE_MODES, CoherenceMode
from repro.utils.rng import SeededRNG


@dataclass
class AgentConfig:
    """Hyper-parameters of the Q-learning agent."""

    initial_epsilon: float = 0.5
    initial_alpha: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.initial_epsilon <= 1.0:
            raise PolicyError("initial_epsilon must be in [0, 1]")
        if not 0.0 <= self.initial_alpha <= 1.0:
            raise PolicyError("initial_alpha must be in [0, 1]")


class QLearningAgent:
    """Tabular Q-learning agent over the 243-state coherence problem."""

    def __init__(
        self,
        config: Optional[AgentConfig] = None,
        rng: Optional[SeededRNG] = None,
        qtable: Optional[QTable] = None,
    ) -> None:
        self.config = config if config is not None else AgentConfig()
        self.rng = rng if rng is not None else SeededRNG(0)
        self.qtable = qtable if qtable is not None else QTable()
        self.epsilon = self.config.initial_epsilon
        self.alpha = self.config.initial_alpha
        self.learning_enabled = True
        self.decisions = 0
        self.random_decisions = 0
        self.updates = 0

    # ------------------------------------------------------------------
    # Decision making
    # ------------------------------------------------------------------
    def select_action(
        self,
        state: CoherenceState,
        allowed: Optional[Sequence[CoherenceMode]] = None,
    ) -> CoherenceMode:
        """Pick a coherence mode for ``state`` with epsilon-greedy exploration."""
        # Keep the canonical tuple itself when unrestricted: choice() draws
        # by index so the RNG stream is unchanged, and best_mode() can skip
        # per-candidate index lookups when it sees the canonical ordering.
        candidates: Sequence[CoherenceMode] = (
            list(allowed) if allowed else COHERENCE_MODES
        )
        if not candidates:
            raise PolicyError("no coherence modes available to choose from")
        self.decisions += 1
        if self.learning_enabled and self.rng.maybe(self.epsilon):
            self.random_decisions += 1
            return self.rng.choice(candidates)
        return self.qtable.best_mode(state, allowed=candidates, rng=self.rng)

    def update(self, state: CoherenceState, mode: CoherenceMode, reward: float) -> float:
        """Apply a reward to the Q-table (no-op when learning is disabled)."""
        if not self.learning_enabled or self.alpha <= 0.0:
            return self.qtable.value(state, mode)
        self.updates += 1
        return self.qtable.update(state, mode, reward, self.alpha)

    def update_batch(
        self,
        states: Sequence[CoherenceState],
        modes: Sequence[CoherenceMode],
        rewards: Sequence[float],
    ) -> None:
        """Apply a batch of rewards in arrival order at the current ``alpha``.

        Equivalent to calling :meth:`update` once per element — the batch
        path replays the same scalar recurrence in the same order, so the
        resulting table is bit-identical.  A no-op while frozen, like
        :meth:`update`.
        """
        if not self.learning_enabled or self.alpha <= 0.0:
            return
        self.updates += len(states)
        self.qtable.update_batch(states, modes, rewards, [self.alpha] * len(states))

    # ------------------------------------------------------------------
    # Schedules
    # ------------------------------------------------------------------
    def set_training_progress(self, fraction: float) -> None:
        """Linearly decay epsilon and alpha; ``fraction`` runs from 0 to 1."""
        fraction = min(max(fraction, 0.0), 1.0)
        self.epsilon = self.config.initial_epsilon * (1.0 - fraction)
        self.alpha = self.config.initial_alpha * (1.0 - fraction)

    def freeze(self) -> None:
        """Disable exploration and learning (evaluation mode)."""
        self.learning_enabled = False
        self.epsilon = 0.0
        self.alpha = 0.0

    def unfreeze(self) -> None:
        """Re-enable learning with the initial hyper-parameters."""
        self.learning_enabled = True
        self.epsilon = self.config.initial_epsilon
        self.alpha = self.config.initial_alpha

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Diagnostic counters (useful in tests and reports)."""
        return {
            "epsilon": self.epsilon,
            "alpha": self.alpha,
            "decisions": self.decisions,
            "random_decisions": self.random_decisions,
            "updates": self.updates,
            "state_coverage": self.qtable.coverage(),
        }
