"""Explore how the best coherence mode changes with workload size.

This example reproduces the paper's motivation (Section 3) in miniature:
it runs a handful of accelerators in isolation on the motivation SoC with
Small / Medium / Large workloads under each of the four coherence modes and
prints execution time and off-chip accesses normalised to non-coherent DMA
— showing that the winner depends on both the accelerator and the size.

Run with:  python examples/coherence_mode_exploration.py
Setting REPRO_EXAMPLE_QUICK=1 shrinks the accelerator/size grid (used by
the CI smoke tests).
"""

from __future__ import annotations

import os

from repro.accelerators.library import accelerator_by_name
from repro.experiments.common import motivation_setup
from repro.experiments.isolation import (
    best_mode_per_workload,
    normalize_isolation,
    run_isolation_experiment,
)
from repro.soc.coherence import COHERENCE_MODES
from repro.units import KB, MB
from repro.utils.tables import format_table

if os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0"):
    ACCELERATORS = ("FFT", "SPMV")
    SIZES = {"Small": 16 * KB, "Large": 2 * MB}
else:
    ACCELERATORS = ("Autoencoder", "FFT", "GEMM", "SPMV")
    SIZES = {"Small": 16 * KB, "Medium": 256 * KB, "Large": 2 * MB}


def main() -> None:
    setup = motivation_setup(line_bytes=256)
    measurements = run_isolation_experiment(
        setup,
        accelerators=[accelerator_by_name(name) for name in ACCELERATORS],
        sizes=SIZES,
    )
    table = normalize_isolation(measurements)

    headers = ["accelerator", "size"]
    for mode in COHERENCE_MODES:
        headers.extend([f"{mode.label} time", f"{mode.label} mem"])
    rows = []
    for (accelerator, size), row in sorted(table.items()):
        cells = [accelerator, size]
        for mode in COHERENCE_MODES:
            cells.append(f"{row[mode.label]['exec']:.2f}")
            cells.append(f"{row[mode.label]['mem']:.2f}")
        rows.append(cells)
    print(format_table(headers, rows, title="Accelerators in isolation (normalised to non-coh-dma)"))

    print()
    best = best_mode_per_workload(measurements)
    rows = [[acc, size, mode.label] for (acc, size), mode in sorted(best.items())]
    print(format_table(
        ["accelerator", "size", "fastest coherence mode"],
        rows,
        title="The best mode changes with the accelerator and the workload size",
    ))


if __name__ == "__main__":
    main()
