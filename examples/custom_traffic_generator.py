"""Define a custom accelerator and let Cohmeleon orchestrate it.

The paper characterises accelerators by their communication behaviour; this
example defines two custom accelerators through the traffic-generator
interface — a long-burst streaming engine and a latency-bound irregular
engine — deploys them together with two library accelerators on a custom
SoC configuration, and shows which coherence modes Cohmeleon learns to use
for each of them.

Run with:  python examples/custom_traffic_generator.py
Setting REPRO_EXAMPLE_QUICK=1 shrinks loop counts and the training budget
(used by the CI smoke tests).
"""

from __future__ import annotations

import os
from collections import Counter

from repro import build_system
from repro.accelerators.descriptor import AccessPattern
from repro.accelerators.library import accelerator_by_name
from repro.accelerators.traffic import TrafficGeneratorConfig
from repro.core import CohmeleonPolicy
from repro.soc.config import SoCConfig
from repro.units import KB, MB
from repro.utils.tables import format_table
from repro.workloads.runner import run_application
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec

CUSTOM_SOC = SoCConfig(
    name="CustomSoC",
    num_accelerator_tiles=4,
    noc_rows=3,
    noc_cols=3,
    num_cpus=2,
    num_mem_tiles=2,
    llc_partition_bytes=256 * KB,
    l2_bytes=32 * KB,
)

STREAMER = TrafficGeneratorConfig(
    access_pattern=AccessPattern.STREAMING,
    burst_bytes=4096,
    compute_cycles_per_byte=0.3,
    reuse_factor=1.0,
    read_write_ratio=1.0,
    local_mem_bytes=64 * KB,
).to_descriptor("Streamer")

GATHERER = TrafficGeneratorConfig(
    access_pattern=AccessPattern.IRREGULAR,
    burst_bytes=64,
    compute_cycles_per_byte=0.5,
    reuse_factor=2.0,
    read_write_ratio=4.0,
    access_fraction=0.5,
    local_mem_bytes=32 * KB,
).to_descriptor("Gatherer")


QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")
TRAINING_ITERATIONS = 2 if QUICK else 5


def build_application(loops: int = 1 if QUICK else 2) -> ApplicationSpec:
    phase_small = PhaseSpec(
        name="small-inputs",
        threads=(
            ThreadSpec("s0", ("Streamer",), 24 * KB, loop_count=loops),
            ThreadSpec("s1", ("Gatherer",), 16 * KB, loop_count=loops),
            ThreadSpec("s2", ("FFT", "GEMM"), 32 * KB, loop_count=loops),
        ),
    )
    phase_large = PhaseSpec(
        name="large-inputs",
        threads=(
            ThreadSpec("l0", ("Streamer",), 2 * MB, loop_count=loops),
            ThreadSpec("l1", ("Gatherer",), 1 * MB, loop_count=loops),
            ThreadSpec("l2", ("FFT", "GEMM"), 768 * KB, loop_count=loops),
        ),
    )
    return ApplicationSpec(name="custom-traffic", phases=(phase_small, phase_large))


def main() -> None:
    policy = CohmeleonPolicy()
    accelerators = [STREAMER, GATHERER, accelerator_by_name("FFT"), accelerator_by_name("GEMM")]
    soc, runtime = build_system(CUSTOM_SOC, policy=policy, accelerators=accelerators)

    application = build_application()
    for iteration in range(TRAINING_ITERATIONS):
        policy.set_training_progress(iteration / TRAINING_ITERATIONS)
        run_application(soc, runtime, application)
    policy.freeze()
    result = run_application(soc, runtime, application)

    decisions = {}
    for invocation in result.invocations:
        label = "small" if invocation.footprint_bytes <= 64 * KB else "large"
        decisions.setdefault((invocation.accelerator_name, label), Counter())[
            invocation.mode.label
        ] += 1

    rows = []
    for (accelerator, size), counts in sorted(decisions.items()):
        distribution = ", ".join(f"{mode} x{count}" for mode, count in counts.most_common())
        rows.append([accelerator, size, distribution])
    print(format_table(
        ["accelerator", "workload", "coherence modes chosen by Cohmeleon"],
        rows,
        title="Learned orchestration of the custom accelerators",
    ))
    print()
    print(f"Total execution: {result.total_execution_cycles:,.0f} cycles, "
          f"{result.total_ddr_accesses} off-chip accesses")


if __name__ == "__main__":
    main()
