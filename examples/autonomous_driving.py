"""Case study: the collaborative-autonomous-vehicles SoC (SoC5).

SoC5 integrates two FFT and two Viterbi accelerators (V2V communication)
plus two Conv-2D and two GEMM accelerators (CNN inference).  This example
runs the domain-specific application of the paper's Section 5 under four
policies — fixed non-coherent DMA, fixed coherent DMA, the manually-tuned
heuristic, and Cohmeleon — and compares execution time and off-chip memory
accesses.

Run with:  python examples/autonomous_driving.py
Setting REPRO_EXAMPLE_QUICK=1 shrinks the training budget (used by the CI
smoke tests).
"""

from __future__ import annotations

import os

from repro import build_system
from repro.core import CohmeleonPolicy, FixedPolicy, ManualPolicy
from repro.soc.coherence import CoherenceMode
from repro.utils.tables import format_table
from repro.workloads.case_studies import case_study_accelerators, case_study_application
from repro.workloads.runner import run_application

TRAINING_ITERATIONS = 1 if os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0") else 4


def evaluate(policy_label: str, policy) -> tuple:
    """Run the SoC5 application under one policy; return (time, accesses)."""
    soc, runtime = build_system(
        "SoC5", policy=policy, accelerators=case_study_accelerators("SoC5")
    )
    training_app = case_study_application("SoC5", instance=0)
    test_app = case_study_application("SoC5", instance=1)

    if isinstance(policy, CohmeleonPolicy):
        for iteration in range(TRAINING_ITERATIONS):
            policy.set_training_progress(iteration / TRAINING_ITERATIONS)
            run_application(soc, runtime, training_app)
        policy.freeze()

    result = run_application(soc, runtime, test_app)
    return result.total_execution_cycles, result.total_ddr_accesses


def main() -> None:
    policies = {
        "fixed-non-coh-dma": FixedPolicy(CoherenceMode.NON_COH_DMA),
        "fixed-coh-dma": FixedPolicy(CoherenceMode.COH_DMA),
        "manual": ManualPolicy(),
        "cohmeleon": CohmeleonPolicy(),
    }
    results = {label: evaluate(label, policy) for label, policy in policies.items()}

    reference_time, reference_mem = results["fixed-non-coh-dma"]
    rows = []
    for label, (cycles, accesses) in results.items():
        rows.append(
            [
                label,
                f"{cycles:,.0f}",
                f"{cycles / reference_time:.3f}",
                accesses,
                f"{accesses / reference_mem:.3f}" if reference_mem else "-",
            ]
        )
    print(format_table(
        [
            "policy",
            "execution cycles",
            "normalised time",
            "off-chip accesses",
            "normalised accesses",
        ],
        rows,
        title="SoC5 (collaborative autonomous vehicles) - V2V + CNN pipelines",
    ))


if __name__ == "__main__":
    main()
