"""Quickstart: run a multithreaded application with Cohmeleon on SoC1.

Builds an SoC from the Table 4 ``SoC1`` preset, binds the ESP accelerator
library to its tiles, runs a small two-phase application while Cohmeleon
learns online, and prints the per-invocation coherence decisions and the
per-phase totals.

Run with:  python examples/quickstart.py
Setting REPRO_EXAMPLE_QUICK=1 shrinks footprints and loop counts (used by
the CI smoke tests).
"""

from __future__ import annotations

import os

from repro import build_system
from repro.core import CohmeleonPolicy
from repro.units import KB, MB
from repro.utils.tables import format_table
from repro.workloads.runner import run_application
from repro.workloads.spec import ApplicationSpec, PhaseSpec, ThreadSpec


QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")


def build_application() -> ApplicationSpec:
    """A small application: a light phase and a heavier parallel phase."""
    loops = 1 if QUICK else 2
    heavy_bytes = 256 * KB if QUICK else 1 * MB
    light = PhaseSpec(
        name="light",
        threads=(
            ThreadSpec("t0", ("FFT", "GEMM"), footprint_bytes=24 * KB, loop_count=loops),
            ThreadSpec("t1", ("Autoencoder",), footprint_bytes=48 * KB, loop_count=loops),
        ),
    )
    heavy = PhaseSpec(
        name="heavy",
        threads=(
            ThreadSpec("h0", ("FFT", "GEMM"), footprint_bytes=heavy_bytes, loop_count=1),
            ThreadSpec("h1", ("Conv-2D",), footprint_bytes=heavy_bytes // 2, loop_count=loops),
            ThreadSpec("h2", ("Cholesky",), footprint_bytes=96 * KB, loop_count=loops),
        ),
    )
    return ApplicationSpec(name="quickstart", phases=(light, heavy))


def main() -> None:
    policy = CohmeleonPolicy()
    soc, runtime = build_system("SoC1", policy=policy)
    application = build_application()

    print(f"SoC: {soc.config.name}  "
          f"({soc.config.num_accelerator_tiles} accelerator tiles, "
          f"{soc.config.num_mem_tiles} memory tiles, "
          f"{soc.config.total_llc_bytes // KB} KB LLC)")
    print(f"Bound accelerators: {', '.join(runtime.bound_accelerator_names())}")
    print()

    # Run the application twice: Cohmeleon learns online during the first
    # run and exploits what it learned during the second.
    for label, progress in (("learning run", 0.0), ("second run", 0.5)):
        policy.set_training_progress(progress)
        result = run_application(soc, runtime, application)
        rows = [
            [
                phase.name,
                f"{phase.execution_cycles:,.0f}",
                phase.ddr_accesses,
                phase.invocation_count,
            ]
            for phase in result.phases
        ]
        print(format_table(
            ["phase", "execution cycles", "off-chip accesses", "invocations"],
            rows,
            title=f"Results ({label})",
        ))
        print()

    rows = [
        [
            invocation.accelerator_name,
            f"{invocation.footprint_bytes // KB} KB",
            invocation.mode.label,
            f"{invocation.total_cycles:,.0f}",
            f"{invocation.ddr_accesses:,.0f}",
        ]
        for invocation in result.invocations[:12]
    ]
    print(format_table(
        ["accelerator", "footprint", "chosen mode", "cycles", "off-chip accesses"],
        rows,
        title="Per-invocation coherence decisions (second run, first 12)",
    ))
    print()
    print(f"Q-table coverage after learning: {policy.qtable.coverage():.1%} of 243 states")


if __name__ == "__main__":
    main()
