"""Case study: the computer-vision SoC (SoC6).

SoC6 provides three instances of an image-classification pipeline composed
of three accelerators: night-vision (undarken), autoencoder (denoise), and
MLP (classify).  This example trains Cohmeleon online on one instance of
the workload and then shows, per pipeline stage and workload size, which
coherence mode the learned policy selects — the same information the
paper's Figure 7 breaks down.

Run with:  python examples/computer_vision_pipeline.py
Setting REPRO_EXAMPLE_QUICK=1 shrinks the training budget (used by the CI
smoke tests).
"""

from __future__ import annotations

import os
from collections import Counter

from repro import build_system
from repro.core import CohmeleonPolicy
from repro.units import KB
from repro.utils.tables import format_table
from repro.workloads.case_studies import case_study_accelerators, case_study_application
from repro.workloads.runner import run_application
from repro.workloads.sizes import size_class_of

TRAINING_ITERATIONS = 1 if os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0") else 5


def main() -> None:
    policy = CohmeleonPolicy()
    soc, runtime = build_system(
        "SoC6", policy=policy, accelerators=case_study_accelerators("SoC6")
    )

    training_app = case_study_application("SoC6", instance=0)
    test_app = case_study_application("SoC6", instance=1)

    print(f"Training Cohmeleon online for {TRAINING_ITERATIONS} iterations "
          f"({training_app.total_invocations} invocations per iteration)...")
    for iteration in range(TRAINING_ITERATIONS):
        policy.set_training_progress(iteration / TRAINING_ITERATIONS)
        run_application(soc, runtime, training_app)
    policy.freeze()

    result = run_application(soc, runtime, test_app)

    # Per pipeline stage: which coherence modes did the learned policy use?
    per_stage = {}
    for invocation in result.invocations:
        key = (
            invocation.accelerator_name,
            size_class_of(invocation.footprint_bytes, soc.config).value,
        )
        per_stage.setdefault(key, Counter())[invocation.mode.label] += 1

    rows = []
    for (stage, size), counts in sorted(per_stage.items()):
        total = sum(counts.values())
        distribution = ", ".join(
            f"{mode} {100 * count / total:.0f}%" for mode, count in counts.most_common()
        )
        rows.append([stage, size, total, distribution])
    print()
    print(format_table(
        ["pipeline stage", "workload size", "invocations", "chosen coherence modes"],
        rows,
        title="Learned coherence decisions for the image-classification pipelines",
    ))

    print()
    rows = [
        [phase.name, f"{phase.execution_cycles:,.0f}", phase.ddr_accesses]
        for phase in result.phases
    ]
    print(format_table(
        ["phase", "execution cycles", "off-chip accesses"],
        rows,
        title="Test-application results under the learned policy",
    ))
    print()
    print(f"Total invocations: {len(result.invocations)}; "
          f"Q-table coverage: {policy.qtable.coverage():.1%}")


if __name__ == "__main__":
    main()
